"""The main event-driven simulator: FIFO servers, deterministic or
exponential service.

This is the paper's standard model when ``service="deterministic"`` with
unit rates, and the Jackson model when ``service="exponential"``. The hot
loop is written for CPython speed (repro band 4/5 flags "slow for
large-mesh statistics" as the risk):

* paths come from a shared :mod:`repro.routing.pathcache` arena — one
  dict probe per packet instead of a hop-by-hop rebuild — and the packet
  record stores the ``(arena_offset, length)`` view, not an edge tuple;
* when every edge has the same deterministic service time (the standard
  model), departure events are generated in nondecreasing time order, so
  the binary heap degenerates into a *monotone merge* of two streams (a
  FIFO departure deque plus the single pending arrival) with the exact
  same ``(time, seq)`` pop order — O(1) per event instead of O(log n);
* the general case (exponential or per-edge service times) runs on a
  pluggable event queue (:mod:`repro.sim.eventqueue`): a calendar queue
  (bucketed event list, the default) or the classic binary heap, both
  popping the exact same ``(time, seq)`` order, with the arrival
  sentinel merged in;
* external arrivals use a *merged* Poisson stream — one exponential gap at
  rate ``sum of node rates`` with the source drawn per packet — which is
  distributionally identical to independent per-node streams and avoids
  scheduling ``n^2`` separate processes;
* random numbers are drawn in blocks of 8192 and consumed by index; the
  uniform-source/uniform-destination fast path draws id pairs from a
  ``2 * 8192`` block, refilled exactly when all ids are consumed;
* per-edge state is plain Python (lists, ``deque``, ``bytearray``) — no
  attribute lookups or NumPy scalar indexing inside the loop.

Any restructuring here is bound by the *same-seed bit-identity contract*
(see :mod:`repro.sim` docs): the RNG draw order, the event pop order and
the floating-point accumulation order are all observable through the
golden-result tests, and none of the optimisations above may change them.

Statistics are exact time integrals (see :mod:`repro.sim` docs). After the
horizon the run *drains* (no further arrivals, events keep processing) so
per-packet delays are never censored.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.enginecommon import (
    SORTED_IDS,
    EngineCommon,
    resolve_saturated_mask,
    resolve_service_rates,
)
from repro.sim.eventqueue import CALENDAR, QUEUE_KINDS, make_event_queue
from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.util.validation import check_positive

_BLOCK = 8192

DETERMINISTIC, EXPONENTIAL = "deterministic", "exponential"


class NetworkSimulation:
    """Event-driven FIFO network simulation.

    Parameters
    ----------
    router:
        Routing scheme (carries the topology). Paths are served from a
        shared path cache; randomized routers draw their per-packet coin
        through the cache's ``sample_offlen`` with unchanged RNG order.
    destinations:
        Destination law.
    node_rate:
        Per-source Poisson generation rate; a scalar applies to every
        source, or pass a sequence aligned with ``source_nodes``.
    service:
        ``"deterministic"`` (the standard model — service time is exactly
        ``1/phi_e``) or ``"exponential"`` (the Jackson model — mean
        ``1/phi_e``).
    service_rates:
        Per-edge ``phi_e`` (scalar broadcasts); the paper's standard model
        is ``1.0``, and the Section 5.1 experiments pass Theorem 15's
        optimal allocation.
    source_nodes:
        Generating nodes (default: all nodes). The butterfly generates
        only at level-0 nodes.
    saturated_mask:
        Optional boolean per-edge mask; when given, the run tracks
        R_s(t) — remaining saturated services — for Table III.
    seed:
        Seed for the run's private :class:`numpy.random.Generator`.
    use_path_cache:
        Disable to fall back to per-packet path rebuilding (the pre-cache
        behaviour; outputs are bit-identical either way — this exists for
        benchmarking the cache).
    path_cache:
        An externally built cache (see
        :func:`repro.routing.pathcache.path_cache_for`) to share across
        runs — e.g. one cache for all replications of a cell. Must have
        been built for this very ``router`` instance (an equal-sized
        topology under a different scheme would silently route wrong).
    event_queue:
        Event-queue structure for the stochastic-service loop
        (exponential or per-edge deterministic service): ``"calendar"``
        (bucketed event list with Brown's-rule adaptive widths, the
        default), ``"calendar-fixed"`` (the same structure pinned to its
        initial width) or ``"heap"`` (binary heap). All three pop the
        identical ``(time, seq)`` order, so outputs are bit-identical
        either way — this exists for benchmarking the calendar queue.
        The uniform-deterministic merge loop bypasses them all.
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        service: str = DETERMINISTIC,
        service_rates: float | Sequence[float] = 1.0,
        source_nodes: Sequence[int] | None = None,
        saturated_mask: Sequence[bool] | None = None,
        seed: int = 0,
        use_path_cache: bool = True,
        path_cache=None,
        event_queue: str = CALENDAR,
    ) -> None:
        if service not in (DETERMINISTIC, EXPONENTIAL):
            raise ValueError(
                f"service must be '{DETERMINISTIC}' or '{EXPONENTIAL}', got {service!r}"
            )
        if event_queue not in QUEUE_KINDS:
            raise ValueError(
                f"event_queue must be one of {'/'.join(QUEUE_KINDS)}, "
                f"got {event_queue!r}"
            )
        self.event_queue = event_queue
        self.service = service
        self.seed = int(seed)

        num_edges = router.topology.num_edges
        phi = resolve_service_rates(service_rates, num_edges)
        self._service_times: list[float] = (1.0 / phi).tolist()
        # Uniform deterministic service enables the monotone-merge event
        # loop (departure times are nondecreasing in push order).
        self._uniform_service = (
            service == DETERMINISTIC
            and self._service_times.count(self._service_times[0])
            == len(self._service_times)
        )

        # Shared constructor policy (sources, rates, pinned source CDF,
        # fast-id predicate, path cache). The batched id draw samples over
        # *all* nodes, so it is only valid when every node generates (at
        # equal rate) in any order — SORTED_IDS — and destinations are
        # uniform over all nodes.
        EngineCommon(
            router,
            destinations,
            node_rate,
            source_nodes=source_nodes,
            fast_id_order=SORTED_IDS,
            path_cache=path_cache,
            use_path_cache=use_path_cache,
        ).install(self)

        self._sat = resolve_saturated_mask(saturated_mask, num_edges)

    # ------------------------------------------------------------------
    def run(
        self,
        warmup: float,
        horizon: float,
        *,
        track_utilization: bool = False,
        collect_delays: bool = False,
        track_number_distribution: bool = False,
        track_maxima: bool = False,
        delay_batches: int = 32,
    ) -> SimResult:
        """Simulate ``warmup + horizon`` time units and drain.

        Parameters
        ----------
        warmup:
            Initial transient discarded from every statistic.
        horizon:
            Measurement window length.
        track_utilization:
            Also accumulate per-edge busy time (adds a little overhead).
        collect_delays:
            Return the raw delay of every measured packet (memory: one
            float per packet — only for modest runs, e.g. dominance tests).
        track_number_distribution:
            Also accumulate the time-weighted distribution of N (used by
            the Theorem 5 stochastic-dominance experiment).
        track_maxima:
            Also record the worst per-packet delay and the longest queue
            observed in the measurement window — the quantities Leighton's
            combinatorial analyses bound (the paper's Section 1.2 contrast
            with this paper's average-case results).
        delay_batches:
            Number of time batches for the delay confidence interval.
        """
        check_positive(horizon, "horizon")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        rng = np.random.default_rng(self.seed)
        t_end = warmup + horizon

        destinations = self.destinations
        exponential = self.service == EXPONENTIAL
        st = self._service_times
        sat = self._sat
        num_nodes = self.topology.num_nodes
        num_edges = self.topology.num_edges
        queues: list[deque] = [deque() for _ in range(num_edges)]
        busy = bytearray(num_edges)

        # Path cache bindings. Deterministic caches get the dict probe
        # inlined in the loop; RNG-consuming caches (randomized greedy,
        # the uncached interner) go through sample_offlen, preserving the
        # per-packet draw order of the pre-cache engine.
        cache = self.path_cache
        arena = cache.arena.edges  # extended in place; safe to bind once
        if cache.consumes_rng:
            det_get = None
            det_build = None
            sample_offlen = cache.sample_offlen
        else:
            det_get = cache.table.get
            det_build = cache.ensure
            sample_offlen = None

        seq = 0

        # Block RNG: exponential(1) variates and uniform source/dest ids.
        exp_block = rng.exponential(size=_BLOCK)
        exp_i = 0
        sources = self.source_nodes
        nsrc = len(sources)
        uniform_fast = self._fast_ids
        uniform_sources = self._uniform_sources
        source_cdf = None if uniform_sources else self._source_cdf
        if uniform_fast:
            id_block = rng.integers(0, num_nodes, size=2 * _BLOCK).tolist()
            id_i = 0
        else:
            id_block = None
            id_i = 0
        gap_scale = 1.0 / self.total_rate

        # Statistics.
        in_system = 0
        remaining = 0
        remaining_sat = 0
        int_n = 0.0
        int_r = 0.0
        int_rs = 0.0
        last_t = 0.0
        generated = completed = zero_hop = 0
        delay_acc = TimeBatchAccumulator(warmup, t_end, delay_batches)
        delays: list[float] | None = [] if collect_delays else None
        util = np.zeros(num_edges) if track_utilization else None
        ndist: dict[int, float] | None = {} if track_number_distribution else None
        max_delay = 0.0
        max_queue = 0
        searchsorted = np.searchsorted
        dest_sample = destinations.sample

        def service_sample(e: int) -> float:
            nonlocal exp_i, exp_block
            if not exponential:
                return st[e]
            if exp_i >= _BLOCK:
                exp_block = rng.exponential(size=_BLOCK)
                exp_i = 0
            v = exp_block[exp_i] * st[e]
            exp_i += 1
            return v

        def start_service_heap(e: int, t: float, pkt: list) -> None:
            nonlocal seq
            s = service_sample(e)
            pushe((t + s, seq, e, pkt))
            seq += 1
            if util is not None:
                lo = t if t > warmup else warmup
                hi = t + s if t + s < t_end else t_end
                if hi > lo:
                    util[e] += hi - lo

        # First arrival (the merged-Poisson sentinel).
        first_gap = exp_block[exp_i] * gap_scale
        exp_i += 1

        draining = False
        in_flight_at_horizon = 0
        # Queues standing when the warmup ends are part of the measurement
        # window: seed max_queue with them at the crossing, so the gate on
        # later updates only excludes growth that ended before the window.
        maxima_seeded = not track_maxima or warmup == 0.0
        BLK = _BLOCK
        TWO_BLOCK = 2 * _BLOCK
        # The common standard-model configuration (no saturation mask, no
        # N-distribution, no maxima, no utilization) gets a lean loop with
        # every untracked branch removed; the arithmetic that remains is
        # identical, so results are bit-identical across loop variants.
        plain_stats = (
            sat is None and ndist is None and not track_maxima and util is None
        )

        if self._uniform_service and plain_stats:
            # -------- monotone-merge event loop, plain statistics --------
            service_c = st[0]
            dep_q: deque = deque()
            dep_pop = dep_q.popleft
            dep_append = dep_q.append
            arr_t = first_gap
            arr_seq = seq
            seq += 1
            have_arrival = True
            while True:
                if dep_q:
                    head = dep_q[0]
                    if have_arrival:
                        ht = head[0]
                        if arr_t < ht or (arr_t == ht and arr_seq < head[1]):
                            is_arrival = True
                            t = arr_t
                        else:
                            is_arrival = False
                            t, _s, e, pkt = dep_pop()
                    else:
                        is_arrival = False
                        t, _s, e, pkt = dep_pop()
                elif have_arrival:
                    is_arrival = True
                    t = arr_t
                else:
                    break
                if t >= t_end and not draining:
                    draining = True
                    in_flight_at_horizon = in_system
                    # Close the integrals exactly at the horizon boundary.
                    lo = last_t if last_t > warmup else warmup
                    if t_end > lo:
                        dt = t_end - lo
                        int_n += in_system * dt
                        int_r += remaining * dt
                    last_t = t_end
                if not draining and t > warmup:
                    lo = last_t if last_t > warmup else warmup
                    dt = t - lo
                    if dt > 0.0:
                        int_n += in_system * dt
                        int_r += remaining * dt
                    last_t = t
                elif not draining:
                    last_t = t

                if is_arrival:
                    # ----- external arrival -----
                    if draining:
                        have_arrival = False  # no arrivals past the horizon
                        continue
                    if uniform_fast:
                        if id_i >= TWO_BLOCK:
                            id_block = rng.integers(
                                0, num_nodes, size=TWO_BLOCK
                            ).tolist()
                            id_i = 0
                        src = id_block[id_i]
                        dst = id_block[id_i + 1]
                        id_i += 2
                    else:
                        if uniform_sources:
                            src = sources[int(rng.integers(nsrc))]
                        else:
                            src = sources[
                                int(
                                    searchsorted(
                                        source_cdf, rng.random(), side="right"
                                    )
                                )
                            ]
                        dst = dest_sample(src, rng)
                    measured = t >= warmup
                    if measured:
                        generated += 1
                    if src == dst:
                        if measured:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                            if delays is not None:
                                delays.append(0.0)
                    else:
                        if det_get is not None:
                            ol = det_get(src * num_nodes + dst)
                            if ol is None:
                                ol = det_build(src, dst)
                            off, ln = ol
                        else:
                            off, ln = sample_offlen(src, dst, rng)
                        in_system += 1
                        remaining += ln
                        new_pkt = [t, off, ln, 0, measured]
                        f = arena[off]
                        if busy[f]:
                            queues[f].append(new_pkt)
                        else:
                            busy[f] = 1
                            dep_append((t + service_c, seq, f, new_pkt))
                            seq += 1
                    # Next arrival.
                    if exp_i >= BLK:
                        exp_block = rng.exponential(size=BLK)
                        exp_i = 0
                    arr_t = t + exp_block[exp_i] * gap_scale
                    exp_i += 1
                    arr_seq = seq
                    seq += 1
                else:
                    # ----- departure: pkt finished service at edge e -----
                    remaining -= 1
                    hop = pkt[3] + 1
                    if hop == pkt[2]:
                        in_system -= 1
                        if pkt[4]:
                            completed += 1
                            d = t - pkt[0]
                            delay_acc.add(pkt[0], d)
                            if delays is not None:
                                delays.append(d)
                    else:
                        pkt[3] = hop
                        f = arena[pkt[1] + hop]
                        if busy[f]:
                            queues[f].append(pkt)
                        else:
                            busy[f] = 1
                            dep_append((t + service_c, seq, f, pkt))
                            seq += 1
                    q = queues[e]
                    if q:
                        dep_append((t + service_c, seq, e, q.popleft()))
                        seq += 1
                    else:
                        busy[e] = 0
        elif self._uniform_service:
            # ---------------- monotone-merge event loop ----------------
            # All service times equal => departures are pushed with
            # nondecreasing times, so a FIFO deque plus the single pending
            # arrival replays the heap's (time, seq) pop order exactly.
            service_c = st[0]
            dep_q: deque = deque()
            dep_pop = dep_q.popleft
            dep_append = dep_q.append
            arr_t = first_gap
            arr_seq = seq
            seq += 1
            have_arrival = True
            while True:
                if dep_q:
                    head = dep_q[0]
                    if have_arrival:
                        ht = head[0]
                        if arr_t < ht or (arr_t == ht and arr_seq < head[1]):
                            is_arrival = True
                            t = arr_t
                        else:
                            is_arrival = False
                            t, _s, e, pkt = dep_pop()
                    else:
                        is_arrival = False
                        t, _s, e, pkt = dep_pop()
                elif have_arrival:
                    is_arrival = True
                    t = arr_t
                else:
                    break
                if not maxima_seeded and t >= warmup:
                    maxima_seeded = True
                    for q in queues:
                        if len(q) > max_queue:
                            max_queue = len(q)
                if t >= t_end and not draining:
                    draining = True
                    in_flight_at_horizon = in_system
                    # Close the integrals exactly at the horizon boundary.
                    lo = last_t if last_t > warmup else warmup
                    if t_end > lo:
                        dt = t_end - lo
                        int_n += in_system * dt
                        int_r += remaining * dt
                        int_rs += remaining_sat * dt
                        if ndist is not None:
                            ndist[in_system] = ndist.get(in_system, 0.0) + dt
                    last_t = t_end
                if not draining and t > warmup:
                    lo = last_t if last_t > warmup else warmup
                    dt = t - lo
                    if dt > 0.0:
                        int_n += in_system * dt
                        int_r += remaining * dt
                        int_rs += remaining_sat * dt
                        if ndist is not None:
                            ndist[in_system] = ndist.get(in_system, 0.0) + dt
                    last_t = t
                elif not draining:
                    last_t = t

                if is_arrival:
                    # ----- external arrival -----
                    if draining:
                        have_arrival = False  # no arrivals past the horizon
                        continue
                    if uniform_fast:
                        if id_i >= TWO_BLOCK:
                            id_block = rng.integers(
                                0, num_nodes, size=TWO_BLOCK
                            ).tolist()
                            id_i = 0
                        src = id_block[id_i]
                        dst = id_block[id_i + 1]
                        id_i += 2
                    else:
                        if uniform_sources:
                            src = sources[int(rng.integers(nsrc))]
                        else:
                            # side="right" so a draw that lands exactly on
                            # a CDF boundary (e.g. u = 0.0 with a leading
                            # zero-rate source) never selects a zero-rate
                            # source.
                            src = sources[
                                int(
                                    searchsorted(
                                        source_cdf, rng.random(), side="right"
                                    )
                                )
                            ]
                        dst = dest_sample(src, rng)
                    measured = t >= warmup
                    if measured:
                        generated += 1
                    if src == dst:
                        if measured:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                            if delays is not None:
                                delays.append(0.0)
                    else:
                        if det_get is not None:
                            ol = det_get(src * num_nodes + dst)
                            if ol is None:
                                ol = det_build(src, dst)
                            off, ln = ol
                        else:
                            off, ln = sample_offlen(src, dst, rng)
                        in_system += 1
                        remaining += ln
                        if sat is not None:
                            nsat = 0
                            for k in range(off, off + ln):
                                if sat[arena[k]]:
                                    nsat += 1
                            remaining_sat += nsat
                        new_pkt = [t, off, ln, 0, measured]
                        f = arena[off]
                        if busy[f]:
                            q = queues[f]
                            q.append(new_pkt)
                            if (
                                track_maxima
                                and measured
                                and not draining
                                and len(q) > max_queue
                            ):
                                max_queue = len(q)
                        else:
                            busy[f] = 1
                            dep_append((t + service_c, seq, f, new_pkt))
                            seq += 1
                            if util is not None:
                                lo = t if t > warmup else warmup
                                hi = t + service_c
                                if hi > t_end:
                                    hi = t_end
                                if hi > lo:
                                    util[f] += hi - lo
                    # Next arrival.
                    if exp_i >= BLK:
                        exp_block = rng.exponential(size=BLK)
                        exp_i = 0
                    arr_t = t + exp_block[exp_i] * gap_scale
                    exp_i += 1
                    arr_seq = seq
                    seq += 1
                else:
                    # ----- departure: pkt finished service at edge e -----
                    remaining -= 1
                    if sat is not None and sat[e]:
                        remaining_sat -= 1
                    hop = pkt[3] + 1
                    if hop == pkt[2]:
                        in_system -= 1
                        if pkt[4]:
                            completed += 1
                            d = t - pkt[0]
                            delay_acc.add(pkt[0], d)
                            if track_maxima and d > max_delay:
                                max_delay = d
                            if delays is not None:
                                delays.append(d)
                    else:
                        pkt[3] = hop
                        f = arena[pkt[1] + hop]
                        if busy[f]:
                            qf = queues[f]
                            qf.append(pkt)
                            if (
                                track_maxima
                                and not draining
                                and t >= warmup
                                and len(qf) > max_queue
                            ):
                                max_queue = len(qf)
                        else:
                            busy[f] = 1
                            dep_append((t + service_c, seq, f, pkt))
                            seq += 1
                            if util is not None:
                                lo = t if t > warmup else warmup
                                hi = t + service_c
                                if hi > t_end:
                                    hi = t_end
                                if hi > lo:
                                    util[f] += hi - lo
                    q = queues[e]
                    if q:
                        nxt = q.popleft()
                        dep_append((t + service_c, seq, e, nxt))
                        seq += 1
                        if util is not None:
                            lo = t if t > warmup else warmup
                            hi = t + service_c
                            if hi > t_end:
                                hi = t_end
                            if hi > lo:
                                util[e] += hi - lo
                    else:
                        busy[e] = 0
        else:
            # ------------------ event-queue loop ------------------
            # Exponential or per-edge deterministic service: departure
            # times are not monotone, so a priority queue orders them —
            # the calendar queue by default, the binary heap on request
            # (both pop the identical (time, seq) order), with the
            # arrival sentinel merged in. The calendar bucket width is
            # one mean arrival gap: the event rate is roughly the
            # arrival rate times the mean hop count, so a bucket holds
            # on the order of one route's worth of events — enough to
            # amortise the day-heap traffic, small enough that the
            # activation sort and same-bucket insorts stay cheap.
            evq = make_event_queue(self.event_queue, width=gap_scale)
            pushe = evq.push
            pope = evq.pop
            pushe((first_gap, seq, -1, None))
            seq += 1
            fast_service = not exponential and util is None
            while evq:
                t, _s, e, pkt = pope()
                if not maxima_seeded and t >= warmup:
                    maxima_seeded = True
                    for q in queues:
                        if len(q) > max_queue:
                            max_queue = len(q)
                if t >= t_end and not draining:
                    draining = True
                    in_flight_at_horizon = in_system
                    # Close the integrals exactly at the horizon boundary.
                    lo = last_t if last_t > warmup else warmup
                    if t_end > lo:
                        dt = t_end - lo
                        int_n += in_system * dt
                        int_r += remaining * dt
                        int_rs += remaining_sat * dt
                        if ndist is not None:
                            ndist[in_system] = ndist.get(in_system, 0.0) + dt
                    last_t = t_end
                if not draining and t > warmup:
                    lo = last_t if last_t > warmup else warmup
                    dt = t - lo
                    if dt > 0.0:
                        int_n += in_system * dt
                        int_r += remaining * dt
                        int_rs += remaining_sat * dt
                        if ndist is not None:
                            ndist[in_system] = ndist.get(in_system, 0.0) + dt
                    last_t = t
                elif not draining:
                    last_t = t

                if e < 0:
                    # ----- external arrival -----
                    if draining:
                        continue  # no arrivals past the horizon
                    if uniform_fast:
                        if id_i >= TWO_BLOCK:
                            id_block = rng.integers(
                                0, num_nodes, size=TWO_BLOCK
                            ).tolist()
                            id_i = 0
                        src = id_block[id_i]
                        dst = id_block[id_i + 1]
                        id_i += 2
                    else:
                        if uniform_sources:
                            src = sources[int(rng.integers(nsrc))]
                        else:
                            src = sources[
                                int(
                                    searchsorted(
                                        source_cdf, rng.random(), side="right"
                                    )
                                )
                            ]
                        dst = dest_sample(src, rng)
                    measured = t >= warmup
                    if measured:
                        generated += 1
                    if src == dst:
                        if measured:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                            if delays is not None:
                                delays.append(0.0)
                    else:
                        if det_get is not None:
                            ol = det_get(src * num_nodes + dst)
                            if ol is None:
                                ol = det_build(src, dst)
                            off, ln = ol
                        else:
                            off, ln = sample_offlen(src, dst, rng)
                        in_system += 1
                        remaining += ln
                        if sat is not None:
                            nsat = 0
                            for k in range(off, off + ln):
                                if sat[arena[k]]:
                                    nsat += 1
                            remaining_sat += nsat
                        new_pkt = [t, off, ln, 0, measured]
                        f = arena[off]
                        if busy[f]:
                            q = queues[f]
                            q.append(new_pkt)
                            if (
                                track_maxima
                                and measured
                                and not draining
                                and len(q) > max_queue
                            ):
                                max_queue = len(q)
                        else:
                            busy[f] = 1
                            if fast_service:
                                pushe((t + st[f], seq, f, new_pkt))
                                seq += 1
                            else:
                                start_service_heap(f, t, new_pkt)
                    # Next arrival.
                    if exp_i >= BLK:
                        exp_block = rng.exponential(size=BLK)
                        exp_i = 0
                    pushe((t + exp_block[exp_i] * gap_scale, seq, -1, None))
                    exp_i += 1
                    seq += 1
                else:
                    # ----- departure: pkt finished service at edge e -----
                    remaining -= 1
                    if sat is not None and sat[e]:
                        remaining_sat -= 1
                    hop = pkt[3] + 1
                    if hop == pkt[2]:
                        in_system -= 1
                        if pkt[4]:
                            completed += 1
                            d = t - pkt[0]
                            delay_acc.add(pkt[0], d)
                            if track_maxima and d > max_delay:
                                max_delay = d
                            if delays is not None:
                                delays.append(d)
                    else:
                        pkt[3] = hop
                        f = arena[pkt[1] + hop]
                        if busy[f]:
                            qf = queues[f]
                            qf.append(pkt)
                            if (
                                track_maxima
                                and not draining
                                and t >= warmup
                                and len(qf) > max_queue
                            ):
                                max_queue = len(qf)
                        else:
                            busy[f] = 1
                            if fast_service:
                                pushe((t + st[f], seq, f, pkt))
                                seq += 1
                            else:
                                start_service_heap(f, t, pkt)
                    q = queues[e]
                    if q:
                        nxt = q.popleft()
                        if fast_service:
                            pushe((t + st[e], seq, e, nxt))
                            seq += 1
                        else:
                            start_service_heap(e, t, nxt)
                    else:
                        busy[e] = 0

        # If the run never reached the horizon (cannot happen: the arrival
        # sentinel always carries the clock forward), close integrals.
        if last_t < t_end:
            lo = last_t if last_t > warmup else warmup
            dt = t_end - lo
            int_n += in_system * dt
            int_r += remaining * dt
            int_rs += remaining_sat * dt
            if ndist is not None:
                ndist[in_system] = ndist.get(in_system, 0.0) + dt

        mean_number = int_n / horizon
        summary = delay_acc.summary()
        if ndist is not None:
            total_dt = sum(ndist.values())
            ndist = {k: v / total_dt for k, v in sorted(ndist.items())}
        return SimResult(
            warmup=warmup,
            horizon=horizon,
            seed=self.seed,
            generated=generated,
            completed=completed,
            zero_hop=zero_hop,
            in_flight_at_end=in_flight_at_horizon,
            mean_number=mean_number,
            mean_remaining=int_r / horizon,
            mean_remaining_saturated=(
                int_rs / horizon if sat is not None else float("nan")
            ),
            mean_delay=summary.mean,
            delay_half_width=summary.half_width,
            mean_delay_littles=mean_number / self.total_rate,
            total_rate=self.total_rate,
            utilization=util / horizon if util is not None else None,
            delays=np.asarray(delays) if delays is not None else None,
            number_distribution=ndist,
            max_delay=max_delay if track_maxima else float("nan"),
            max_queue_length=max_queue if track_maxima else -1,
        )
