"""The main event-driven simulator: FIFO servers, deterministic or
exponential service.

This is the paper's standard model when ``service="deterministic"`` with
unit rates, and the Jackson model when ``service="exponential"``. The hot
loop is written for CPython speed (repro band 4/5 flags "slow for
large-mesh statistics" as the risk):

* paths come from a shared :mod:`repro.routing.pathcache` arena — one
  dict probe per packet instead of a hop-by-hop rebuild — and the packet
  record stores the ``(arena_offset, length)`` view, not an edge tuple;
* when every edge has the same deterministic service time (the standard
  model), departure events are generated in nondecreasing time order, so
  the binary heap degenerates into a *monotone merge* of two streams (a
  FIFO departure deque plus the single pending arrival) with the exact
  same ``(time, seq)`` pop order — O(1) per event instead of O(log n);
* the general case (exponential or per-edge service times) runs on a
  pluggable event queue (:mod:`repro.sim.eventqueue`): a calendar queue
  (bucketed event list, the default) or the classic binary heap, both
  popping the exact same ``(time, seq)`` order, with the arrival
  sentinel merged in;
* external arrivals use a *merged* Poisson stream — one exponential gap at
  rate ``sum of node rates`` with the source drawn per packet — which is
  distributionally identical to independent per-node streams and avoids
  scheduling ``n^2`` separate processes;
* random numbers are drawn in blocks of 8192 and consumed by index; the
  uniform-source/uniform-destination fast path draws id pairs from a
  ``2 * 8192`` block, refilled exactly when all ids are consumed;
* per-edge state is plain Python (lists, ``deque``, ``bytearray``) — no
  attribute lookups or NumPy scalar indexing inside the loop.

The loops themselves live in the kernels layer
(:mod:`repro.sim.kernels`): this class owns configuration and validation
and dispatches ``run`` to the kernel selected by the ``backend`` knob.
The default ``backend="python"`` kernel is the extracted reference loop,
bound by the *same-seed bit-identity contract* (see :mod:`repro.sim`
docs): the RNG draw order, the event pop order and the floating-point
accumulation order are all observable through the golden-result tests,
and no optimisation may change them. ``backend="numpy"`` trades that
contract for vectorization and is pinned by distribution-level parity
tests instead.

Statistics are exact time integrals (see :mod:`repro.sim` docs). After the
horizon the run *drains* (no further arrivals, events keep processing) so
per-packet delays are never censored.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.enginecommon import (
    SORTED_IDS,
    EngineCommon,
    resolve_saturated_mask,
    resolve_service_rates,
)
from repro.sim.eventqueue import CALENDAR, QUEUE_KINDS
from repro.sim.kernels import (
    FIFO_KERNEL,
    NUMPY_BACKEND,
    PYTHON_BACKEND,
    check_backend,
    get_kernel,
)
from repro.sim.result import SimResult
from repro.util.validation import check_positive

DETERMINISTIC, EXPONENTIAL = "deterministic", "exponential"


class NetworkSimulation:
    """Event-driven FIFO network simulation.

    Parameters
    ----------
    router:
        Routing scheme (carries the topology). Paths are served from a
        shared path cache; randomized routers draw their per-packet coin
        through the cache's ``sample_offlen`` with unchanged RNG order.
    destinations:
        Destination law.
    node_rate:
        Per-source Poisson generation rate; a scalar applies to every
        source, or pass a sequence aligned with ``source_nodes``.
    service:
        ``"deterministic"`` (the standard model — service time is exactly
        ``1/phi_e``) or ``"exponential"`` (the Jackson model — mean
        ``1/phi_e``).
    service_rates:
        Per-edge ``phi_e`` (scalar broadcasts); the paper's standard model
        is ``1.0``, and the Section 5.1 experiments pass Theorem 15's
        optimal allocation.
    source_nodes:
        Generating nodes (default: all nodes). The butterfly generates
        only at level-0 nodes.
    saturated_mask:
        Optional boolean per-edge mask; when given, the run tracks
        R_s(t) — remaining saturated services — for Table III.
    seed:
        Seed for the run's private :class:`numpy.random.Generator`.
    use_path_cache:
        Disable to fall back to per-packet path rebuilding (the pre-cache
        behaviour; outputs are bit-identical either way — this exists for
        benchmarking the cache).
    path_cache:
        An externally built cache (see
        :func:`repro.routing.pathcache.path_cache_for`) to share across
        runs — e.g. one cache for all replications of a cell. Must have
        been built for this very ``router`` instance (an equal-sized
        topology under a different scheme would silently route wrong).
    event_queue:
        Event-queue structure for the stochastic-service loop
        (exponential or per-edge deterministic service): ``"calendar"``
        (bucketed event list with Brown's-rule adaptive widths, the
        default), ``"calendar-fixed"`` (the same structure pinned to its
        initial width) or ``"heap"`` (binary heap). All three pop the
        identical ``(time, seq)`` order, so outputs are bit-identical
        either way — this exists for benchmarking the calendar queue.
        The uniform-deterministic merge loop bypasses them all.
    backend:
        Kernel backend for the hot loop (see :mod:`repro.sim.kernels`):
        ``"python"`` (the default) runs the extracted reference loops
        under the same-seed bit-identity contract; ``"numpy"`` runs the
        vectorized max-plus kernel — distribution-identical, not
        draw-order-identical, and only for uniform deterministic
        service (the monotone-merge regime).
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        service: str = DETERMINISTIC,
        service_rates: float | Sequence[float] = 1.0,
        source_nodes: Sequence[int] | None = None,
        saturated_mask: Sequence[bool] | None = None,
        seed: int = 0,
        use_path_cache: bool = True,
        path_cache=None,
        event_queue: str = CALENDAR,
        backend: str = PYTHON_BACKEND,
    ) -> None:
        if service not in (DETERMINISTIC, EXPONENTIAL):
            raise ValueError(
                f"service must be '{DETERMINISTIC}' or '{EXPONENTIAL}', got {service!r}"
            )
        if event_queue not in QUEUE_KINDS:
            raise ValueError(
                f"event_queue must be one of {'/'.join(QUEUE_KINDS)}, "
                f"got {event_queue!r}"
            )
        self.event_queue = event_queue
        self.service = service
        self.seed = int(seed)

        num_edges = router.topology.num_edges
        phi = resolve_service_rates(service_rates, num_edges)
        self._service_times: list[float] = (1.0 / phi).tolist()
        # Uniform deterministic service enables the monotone-merge event
        # loop (departure times are nondecreasing in push order).
        self._uniform_service = (
            service == DETERMINISTIC
            and self._service_times.count(self._service_times[0])
            == len(self._service_times)
        )
        self.backend = check_backend(backend)
        if self.backend == NUMPY_BACKEND and not self._uniform_service:
            raise ValueError(
                "backend='numpy' vectorizes only the uniform-deterministic "
                "(monotone-merge) regime; exponential or per-edge service "
                "rates need backend='python'"
            )

        # Shared constructor policy (sources, rates, pinned source CDF,
        # fast-id predicate, path cache). The batched id draw samples over
        # *all* nodes, so it is only valid when every node generates (at
        # equal rate) in any order — SORTED_IDS — and destinations are
        # uniform over all nodes.
        EngineCommon(
            router,
            destinations,
            node_rate,
            source_nodes=source_nodes,
            fast_id_order=SORTED_IDS,
            path_cache=path_cache,
            use_path_cache=use_path_cache,
        ).install(self)

        self._sat = resolve_saturated_mask(saturated_mask, num_edges)

    # ------------------------------------------------------------------
    def run(
        self,
        warmup: float,
        horizon: float,
        *,
        track_utilization: bool = False,
        collect_delays: bool = False,
        track_number_distribution: bool = False,
        track_maxima: bool = False,
        delay_batches: int = 32,
    ) -> SimResult:
        """Simulate ``warmup + horizon`` time units and drain.

        Parameters
        ----------
        warmup:
            Initial transient discarded from every statistic.
        horizon:
            Measurement window length.
        track_utilization:
            Also accumulate per-edge busy time (adds a little overhead).
        collect_delays:
            Return the raw delay of every measured packet (memory: one
            float per packet — only for modest runs, e.g. dominance tests).
        track_number_distribution:
            Also accumulate the time-weighted distribution of N (used by
            the Theorem 5 stochastic-dominance experiment).
        track_maxima:
            Also record the worst per-packet delay and the longest queue
            observed in the measurement window — the quantities Leighton's
            combinatorial analyses bound (the paper's Section 1.2 contrast
            with this paper's average-case results).
        delay_batches:
            Number of time batches for the delay confidence interval.
        """
        check_positive(horizon, "horizon")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        return get_kernel(FIFO_KERNEL, self.backend)(
            self,
            warmup,
            horizon,
            track_utilization=track_utilization,
            collect_delays=collect_delays,
            track_number_distribution=track_number_distribution,
            track_maxima=track_maxima,
            delay_batches=delay_batches,
        )
