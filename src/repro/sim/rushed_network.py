"""The "rushed" copy system Q1 of Theorem 10.

"The trick is to send a copy of a packet to all the queues it will visit
immediately, and have each duplicate exit the system after it has been
served by the single queue." Each queue, seen in isolation, is then an
M/D/1 queue with the original edge's arrival rate — the queues are
*dependent* (copies of one packet arrive simultaneously) but linearity of
expectation makes the expected total equal the independent-M/D/1 sum,
which is the pivot of the Theorem 10 proof.

This simulator exists to verify those two analytic claims empirically:

* ``E[N1]`` (time-averaged copies in system) equals
  ``sum_e MD1(lam_e).mean_number()``;
* every copy's queue, marginally, behaves like an M/D/1 queue (per-edge
  occupancy matches the M/D/1 closed form).

It also reports the "makespan" delay — the time until *all* copies of a
packet are served — which lower-bounds the original packet's delay on
matched sample paths (the rushed system is the faster one).

The engine shares the hot-path architecture of
:class:`repro.sim.NetworkSimulation` (see :mod:`repro.sim` docs): paths
come from the shared :mod:`repro.routing.pathcache` arena and the packet
record stores an ``(arena_offset, length)`` view; exponential gaps and
uniform id pairs are drawn in 8192-size blocks; uniform deterministic
service (the standard model) runs the monotone-merge event loop, and
per-edge deterministic service runs on the pluggable event queue
(calendar by default). The same-seed bit-identity contract applies: the
rushed golden cells in ``tests/golden/`` pin this engine's outputs.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.enginecommon import (
    SORTED_IDS,
    EngineCommon,
    resolve_saturated_mask,
    resolve_service_rates,
)
from repro.sim.eventqueue import CALENDAR, QUEUE_KINDS, make_event_queue
from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.sim.rng import make_rng
from repro.util.validation import check_positive

_BLOCK = 8192


class RushedNetworkSimulation:
    """Simulate Q1: immediate copies at every queue on the route.

    Parameters mirror :class:`repro.sim.NetworkSimulation` (FIFO servers,
    deterministic service ``1/phi_e``; ``use_path_cache`` / ``path_cache``
    / ``event_queue`` / ``saturated_mask`` control the hot path and the
    optional R_s(t) tracking exactly as there).

    Notes
    -----
    In the returned :class:`SimResult`, ``mean_number`` is the time-averaged
    number of *copies* in the system (the paper's ``N1``); ``mean_delay``
    is the per-packet makespan (all copies served); ``mean_remaining``
    equals ``mean_number`` by construction (each copy needs exactly one
    service), so with a ``saturated_mask`` the tracked
    ``mean_remaining_saturated`` is simply the time-averaged number of
    copies sitting at saturated edges. ``utilization`` reports per-edge
    mean copy occupancy (not busy fraction) so tests can compare
    queue-by-queue against M/D/1. ``run(track_maxima=True)`` records the
    worst per-packet makespan and the longest copy queue inside the
    measurement window, mirroring the FIFO engine's option.
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        service_rates: float | Sequence[float] = 1.0,
        source_nodes: Sequence[int] | None = None,
        saturated_mask: Sequence[bool] | None = None,
        seed: int = 0,
        use_path_cache: bool = True,
        path_cache=None,
        event_queue: str = CALENDAR,
    ) -> None:
        if event_queue not in QUEUE_KINDS:
            raise ValueError(
                f"event_queue must be one of {'/'.join(QUEUE_KINDS)}, "
                f"got {event_queue!r}"
            )
        self.event_queue = event_queue
        self.seed = int(seed)
        self._sat = resolve_saturated_mask(
            saturated_mask, router.topology.num_edges
        )
        phi = resolve_service_rates(service_rates, router.topology.num_edges)
        self._service_times: list[float] = (1.0 / phi).tolist()
        # Uniform deterministic service enables the monotone-merge event
        # loop (copies start service at the event time, so departures are
        # pushed with nondecreasing times).
        self._uniform_service = (
            self._service_times.count(self._service_times[0])
            == len(self._service_times)
        )
        # Shared constructor policy: same discipline as the event engine
        # (SORTED_IDS fast ids; side='right' pinned-CDF draws can never
        # pick a zero-rate source).
        EngineCommon(
            router,
            destinations,
            node_rate,
            source_nodes=source_nodes,
            fast_id_order=SORTED_IDS,
            path_cache=path_cache,
            use_path_cache=use_path_cache,
        ).install(self)

    def run(
        self,
        warmup: float,
        horizon: float,
        *,
        track_maxima: bool = False,
        delay_batches: int = 32,
    ) -> SimResult:
        """Simulate ``warmup + horizon`` time units and drain.

        ``track_maxima`` additionally records the worst per-packet
        makespan and the longest copy queue observed in the measurement
        window (the FIFO engine's option, for the same Leighton-contrast
        purpose).
        """
        check_positive(horizon, "horizon")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        rng = make_rng(self.seed, engine="rushed")
        t_end = warmup + horizon
        destinations = self.destinations
        st = self._service_times
        sat = self._sat
        num_nodes = self.topology.num_nodes
        num_edges = self.topology.num_edges
        queues: list[deque] = [deque() for _ in range(num_edges)]
        busy = bytearray(num_edges)
        seq = 0

        # Path cache bindings (see NetworkSimulation.run).
        cache = self.path_cache
        arena = cache.arena.edges  # extended in place; safe to bind once
        if cache.consumes_rng:
            det_get = None
            det_build = None
            sample_offlen = cache.sample_offlen
        else:
            det_get = cache.table.get
            det_build = cache.ensure
            sample_offlen = None

        # Block RNG: exponential(1) variates and uniform source/dest ids.
        exp_block = rng.exponential(size=_BLOCK)
        exp_i = 0
        sources = self.source_nodes
        nsrc = len(sources)
        uniform_fast = self._fast_ids
        uniform_sources = self._uniform_sources
        source_cdf = None if uniform_sources else self._source_cdf
        if uniform_fast:
            id_block = rng.integers(0, num_nodes, size=2 * _BLOCK).tolist()
            id_i = 0
        else:
            id_block = None
            id_i = 0
        gap_scale = 1.0 / self.total_rate
        searchsorted = np.searchsorted
        dest_sample = destinations.sample
        BLK = _BLOCK
        TWO_BLOCK = 2 * _BLOCK

        copies_in_system = 0
        int_copies = 0.0
        int_rs = 0.0
        remaining_sat = 0  # copies currently at saturated edges
        int_per_edge = np.zeros(num_edges)
        occupancy = [0] * num_edges  # current copies at each edge
        edge_last = [0.0] * num_edges  # lazy per-edge integration cursor
        last_t = 0.0
        generated = completed = zero_hop = 0
        in_flight_at_horizon = 0
        delay_acc = TimeBatchAccumulator(warmup, t_end, delay_batches)
        max_delay = 0.0
        max_queue = 0
        # Queues standing when the warmup ends are part of the measurement
        # window (same convention as the FIFO engine).
        maxima_seeded = not track_maxima or warmup == 0.0

        def bump_edge(e: int, t: float) -> None:
            """Accumulate edge e's occupancy integral up to time t."""
            lo = edge_last[e] if edge_last[e] > warmup else warmup
            hi = t if t < t_end else t_end
            if hi > lo and occupancy[e]:
                int_per_edge[e] += occupancy[e] * (hi - lo)
            edge_last[e] = t

        first_gap = exp_block[exp_i] * gap_scale
        exp_i += 1
        draining = False

        if self._uniform_service:
            # -------- monotone-merge event loop (standard model) --------
            service_c = st[0]
            dep_q: deque = deque()
            dep_pop = dep_q.popleft
            dep_append = dep_q.append
            arr_t = first_gap
            arr_seq = seq
            seq += 1
            have_arrival = True
            while True:
                if dep_q:
                    head = dep_q[0]
                    if have_arrival:
                        ht = head[0]
                        if arr_t < ht or (arr_t == ht and arr_seq < head[1]):
                            is_arrival = True
                            t = arr_t
                        else:
                            is_arrival = False
                            t, _s, e, parent = dep_pop()
                    else:
                        is_arrival = False
                        t, _s, e, parent = dep_pop()
                elif have_arrival:
                    is_arrival = True
                    t = arr_t
                else:
                    break
                if not maxima_seeded and t >= warmup:
                    maxima_seeded = True
                    for q in queues:
                        if len(q) > max_queue:
                            max_queue = len(q)
                if t >= t_end and not draining:
                    draining = True
                    in_flight_at_horizon = copies_in_system
                    lo = last_t if last_t > warmup else warmup
                    if t_end > lo:
                        dt = t_end - lo
                        int_copies += copies_in_system * dt
                        int_rs += remaining_sat * dt
                    last_t = t_end
                if not draining and t > warmup:
                    lo = last_t if last_t > warmup else warmup
                    dt = t - lo
                    if dt > 0.0:
                        int_copies += copies_in_system * dt
                        int_rs += remaining_sat * dt
                    last_t = t
                elif not draining:
                    last_t = t

                if is_arrival:
                    # ----- external packet generation: copies everywhere -----
                    if draining:
                        have_arrival = False
                        continue
                    if uniform_fast:
                        if id_i >= TWO_BLOCK:
                            id_block = rng.integers(
                                0, num_nodes, size=TWO_BLOCK
                            ).tolist()
                            id_i = 0
                        src = id_block[id_i]
                        dst = id_block[id_i + 1]
                        id_i += 2
                    else:
                        if uniform_sources:
                            src = sources[int(rng.integers(nsrc))]
                        else:
                            src = sources[
                                int(
                                    searchsorted(
                                        source_cdf, rng.random(), side="right"
                                    )
                                )
                            ]
                        dst = dest_sample(src, rng)
                    measured = t >= warmup
                    if measured:
                        generated += 1
                    if src == dst:
                        if measured:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                    else:
                        if det_get is not None:
                            ol = det_get(src * num_nodes + dst)
                            if ol is None:
                                ol = det_build(src, dst)
                            off, ln = ol
                        else:
                            off, ln = sample_offlen(src, dst, rng)
                        # parent record: [birth, copies_left, measured]
                        # (fresh per-packet record — mutated in place)
                        parent = [t, ln, measured]  # replint: disable=hot-loop-alloc
                        copies_in_system += ln
                        for k in range(off, off + ln):
                            f = arena[k]
                            bump_edge(f, t)
                            occupancy[f] += 1
                            if sat is not None and sat[f]:
                                remaining_sat += 1
                            if busy[f]:
                                q = queues[f]
                                q.append(parent)
                                if (
                                    track_maxima
                                    and measured
                                    and not draining
                                    and len(q) > max_queue
                                ):
                                    max_queue = len(q)
                            else:
                                busy[f] = 1
                                dep_append((t + service_c, seq, f, parent))
                                seq += 1
                    # Next arrival.
                    if exp_i >= BLK:
                        exp_block = rng.exponential(size=BLK)
                        exp_i = 0
                    arr_t = t + exp_block[exp_i] * gap_scale
                    exp_i += 1
                    arr_seq = seq
                    seq += 1
                else:
                    # ----- copy finished service at edge e -----
                    copies_in_system -= 1
                    bump_edge(e, t)
                    occupancy[e] -= 1
                    if sat is not None and sat[e]:
                        remaining_sat -= 1
                    parent[1] -= 1
                    if parent[1] == 0 and parent[2]:
                        completed += 1
                        d = t - parent[0]
                        delay_acc.add(parent[0], d)
                        if track_maxima and d > max_delay:
                            max_delay = d
                    q = queues[e]
                    if q:
                        dep_append((t + service_c, seq, e, q.popleft()))
                        seq += 1
                    else:
                        busy[e] = 0
        else:
            # ------------- event-queue loop (per-edge service) -------------
            # Per-edge deterministic service times break the monotone push
            # order; the pluggable event queue (calendar by default)
            # orders departures exactly like a binary heap would.
            evq = make_event_queue(self.event_queue, width=gap_scale)
            pushe = evq.push
            pope = evq.pop
            pushe((first_gap, seq, -1, None))
            seq += 1
            while evq:
                t, _s, e, parent = pope()
                if not maxima_seeded and t >= warmup:
                    maxima_seeded = True
                    for q in queues:
                        if len(q) > max_queue:
                            max_queue = len(q)
                if t >= t_end and not draining:
                    draining = True
                    in_flight_at_horizon = copies_in_system
                    lo = last_t if last_t > warmup else warmup
                    if t_end > lo:
                        dt = t_end - lo
                        int_copies += copies_in_system * dt
                        int_rs += remaining_sat * dt
                    last_t = t_end
                if not draining and t > warmup:
                    lo = last_t if last_t > warmup else warmup
                    dt = t - lo
                    if dt > 0.0:
                        int_copies += copies_in_system * dt
                        int_rs += remaining_sat * dt
                    last_t = t
                elif not draining:
                    last_t = t

                if e < 0:
                    # ----- external packet generation: copies everywhere -----
                    if draining:
                        continue
                    if uniform_fast:
                        if id_i >= TWO_BLOCK:
                            id_block = rng.integers(
                                0, num_nodes, size=TWO_BLOCK
                            ).tolist()
                            id_i = 0
                        src = id_block[id_i]
                        dst = id_block[id_i + 1]
                        id_i += 2
                    else:
                        if uniform_sources:
                            src = sources[int(rng.integers(nsrc))]
                        else:
                            src = sources[
                                int(
                                    searchsorted(
                                        source_cdf, rng.random(), side="right"
                                    )
                                )
                            ]
                        dst = dest_sample(src, rng)
                    measured = t >= warmup
                    if measured:
                        generated += 1
                    if src == dst:
                        if measured:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                    else:
                        if det_get is not None:
                            ol = det_get(src * num_nodes + dst)
                            if ol is None:
                                ol = det_build(src, dst)
                            off, ln = ol
                        else:
                            off, ln = sample_offlen(src, dst, rng)
                        # (fresh per-packet record — mutated in place)
                        parent = [t, ln, measured]  # replint: disable=hot-loop-alloc
                        copies_in_system += ln
                        for k in range(off, off + ln):
                            f = arena[k]
                            bump_edge(f, t)
                            occupancy[f] += 1
                            if sat is not None and sat[f]:
                                remaining_sat += 1
                            if busy[f]:
                                q = queues[f]
                                q.append(parent)
                                if (
                                    track_maxima
                                    and measured
                                    and not draining
                                    and len(q) > max_queue
                                ):
                                    max_queue = len(q)
                            else:
                                busy[f] = 1
                                pushe((t + st[f], seq, f, parent))
                                seq += 1
                    if exp_i >= BLK:
                        exp_block = rng.exponential(size=BLK)
                        exp_i = 0
                    pushe((t + exp_block[exp_i] * gap_scale, seq, -1, None))
                    exp_i += 1
                    seq += 1
                else:
                    # ----- copy finished service at edge e -----
                    copies_in_system -= 1
                    bump_edge(e, t)
                    occupancy[e] -= 1
                    if sat is not None and sat[e]:
                        remaining_sat -= 1
                    parent[1] -= 1
                    if parent[1] == 0 and parent[2]:
                        completed += 1
                        d = t - parent[0]
                        delay_acc.add(parent[0], d)
                        if track_maxima and d > max_delay:
                            max_delay = d
                    q = queues[e]
                    if q:
                        pushe((t + st[e], seq, e, q.popleft()))
                        seq += 1
                    else:
                        busy[e] = 0

        if last_t < t_end:
            lo = last_t if last_t > warmup else warmup
            dt = t_end - lo
            int_copies += copies_in_system * dt
            int_rs += remaining_sat * dt
            last_t = t_end
        for eid in range(num_edges):
            bump_edge(eid, t_end)

        mean_copies = int_copies / horizon
        summary = delay_acc.summary()
        return SimResult(
            warmup=warmup,
            horizon=horizon,
            seed=self.seed,
            generated=generated,
            completed=completed,
            zero_hop=zero_hop,
            in_flight_at_end=in_flight_at_horizon,
            mean_number=mean_copies,
            mean_remaining=mean_copies,
            mean_remaining_saturated=(
                int_rs / horizon if sat is not None else float("nan")
            ),
            mean_delay=summary.mean,
            delay_half_width=summary.half_width,
            mean_delay_littles=mean_copies / self.total_rate,
            total_rate=self.total_rate,
            utilization=int_per_edge / horizon,
            max_delay=max_delay if track_maxima else float("nan"),
            max_queue_length=max_queue if track_maxima else -1,
        )
