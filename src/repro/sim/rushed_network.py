"""The "rushed" copy system Q1 of Theorem 10.

"The trick is to send a copy of a packet to all the queues it will visit
immediately, and have each duplicate exit the system after it has been
served by the single queue." Each queue, seen in isolation, is then an
M/D/1 queue with the original edge's arrival rate — the queues are
*dependent* (copies of one packet arrive simultaneously) but linearity of
expectation makes the expected total equal the independent-M/D/1 sum,
which is the pivot of the Theorem 10 proof.

This simulator exists to verify those two analytic claims empirically:

* ``E[N1]`` (time-averaged copies in system) equals
  ``sum_e MD1(lam_e).mean_number()``;
* every copy's queue, marginally, behaves like an M/D/1 queue (per-edge
  occupancy matches the M/D/1 closed form).

It also reports the "makespan" delay — the time until *all* copies of a
packet are served — which lower-bounds the original packet's delay on
matched sample paths (the rushed system is the faster one).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.util.validation import check_positive


class RushedNetworkSimulation:
    """Simulate Q1: immediate copies at every queue on the route.

    Parameters mirror :class:`repro.sim.NetworkSimulation` (FIFO servers,
    deterministic service ``1/phi_e``).

    Notes
    -----
    In the returned :class:`SimResult`, ``mean_number`` is the time-averaged
    number of *copies* in the system (the paper's ``N1``); ``mean_delay``
    is the per-packet makespan (all copies served); ``mean_remaining``
    equals ``mean_number`` by construction (each copy needs exactly one
    service). ``utilization`` reports per-edge mean copy occupancy (not
    busy fraction) so tests can compare queue-by-queue against M/D/1.
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        service_rates: float | Sequence[float] = 1.0,
        source_nodes: Sequence[int] | None = None,
        seed: int = 0,
    ) -> None:
        self.router = router
        self.topology = router.topology
        self.destinations = destinations
        self.seed = int(seed)
        num_edges = self.topology.num_edges
        if np.isscalar(service_rates):
            phi = np.full(num_edges, float(service_rates))
        else:
            phi = np.asarray(service_rates, dtype=float)
            if phi.shape != (num_edges,):
                raise ValueError(f"service_rates must have {num_edges} entries")
        if np.any(phi <= 0):
            raise ValueError("service rates must be positive")
        self._service_times = (1.0 / phi).tolist()
        self.source_nodes = (
            list(range(self.topology.num_nodes))
            if source_nodes is None
            else [int(s) for s in source_nodes]
        )
        if np.isscalar(node_rate):
            check_positive(node_rate, "node_rate")
            self.node_rates = np.full(len(self.source_nodes), float(node_rate))
        else:
            self.node_rates = np.asarray(node_rate, dtype=float)
            if self.node_rates.shape != (len(self.source_nodes),):
                raise ValueError("node_rate sequence must match source_nodes")
        self.total_rate = float(self.node_rates.sum())
        if self.total_rate <= 0:
            raise ValueError("total arrival rate must be positive")
        self._source_cdf = np.cumsum(self.node_rates) / self.total_rate

    def run(
        self,
        warmup: float,
        horizon: float,
        *,
        delay_batches: int = 32,
    ) -> SimResult:
        """Simulate ``warmup + horizon`` time units and drain."""
        check_positive(horizon, "horizon")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        rng = np.random.default_rng(self.seed)
        t_end = warmup + horizon
        num_edges = self.topology.num_edges
        st = self._service_times
        queues: list[deque] = [deque() for _ in range(num_edges)]
        busy = bytearray(num_edges)
        heap: list = []
        seq = 0
        push = heapq.heappush
        pop = heapq.heappop

        copies_in_system = 0
        int_copies = 0.0
        int_per_edge = np.zeros(num_edges)
        occupancy = [0] * num_edges  # current copies at each edge
        edge_last = [0.0] * num_edges  # lazy per-edge integration cursor
        last_t = 0.0
        generated = completed = zero_hop = 0
        in_flight_at_horizon = 0
        delay_acc = TimeBatchAccumulator(warmup, t_end, delay_batches)

        def start_service(e: int, t: float, packet: list) -> None:
            nonlocal seq
            push(heap, (t + st[e], seq, e, packet))
            seq += 1

        def bump_edge(e: int, t: float) -> None:
            """Accumulate edge e's occupancy integral up to time t."""
            lo = edge_last[e] if edge_last[e] > warmup else warmup
            hi = t if t < t_end else t_end
            if hi > lo and occupancy[e]:
                int_per_edge[e] += occupancy[e] * (hi - lo)
            edge_last[e] = t

        push(heap, (rng.exponential(1.0 / self.total_rate), seq, -1, None))
        seq += 1

        draining = False
        while heap:
            t, _s, e, packet = pop(heap)
            if t >= t_end and not draining:
                draining = True
                in_flight_at_horizon = copies_in_system
                lo = last_t if last_t > warmup else warmup
                if t_end > lo:
                    int_copies += copies_in_system * (t_end - lo)
                last_t = t_end
            if not draining and t > warmup:
                lo = last_t if last_t > warmup else warmup
                dt = t - lo
                if dt > 0.0:
                    int_copies += copies_in_system * dt
                last_t = t
            elif not draining:
                last_t = t

            if e < 0:
                # ----- external packet generation: copies everywhere -----
                if draining:
                    continue
                src = self.source_nodes[
                    int(np.searchsorted(self._source_cdf, rng.random()))
                ]
                dst = self.destinations.sample(src, rng)
                measured = t >= warmup
                if measured:
                    generated += 1
                if src == dst:
                    if measured:
                        zero_hop += 1
                        completed += 1
                        delay_acc.add(t, 0.0)
                else:
                    path = self.router.sample_path(src, dst, rng)
                    # packet record: [birth, copies_left, measured]
                    parent = [t, len(path), measured]
                    copies_in_system += len(path)
                    for f in path:
                        bump_edge(f, t)
                        occupancy[f] += 1
                        copy = (parent, f)
                        if busy[f]:
                            queues[f].append(copy)
                        else:
                            busy[f] = 1
                            start_service(f, t, copy)
                push(heap, (t + rng.exponential(1.0 / self.total_rate), seq, -1, None))
                seq += 1
            else:
                # ----- copy finished service at edge e -----
                parent, _edge = packet
                copies_in_system -= 1
                bump_edge(e, t)
                occupancy[e] -= 1
                parent[1] -= 1
                if parent[1] == 0 and parent[2]:
                    completed += 1
                    delay_acc.add(parent[0], t - parent[0])
                q = queues[e]
                if q:
                    start_service(e, t, q.popleft())
                else:
                    busy[e] = 0

        if last_t < t_end:
            lo = last_t if last_t > warmup else warmup
            int_copies += copies_in_system * (t_end - lo)
            last_t = t_end
        for eid in range(num_edges):
            bump_edge(eid, t_end)

        mean_copies = int_copies / horizon
        summary = delay_acc.summary()
        return SimResult(
            warmup=warmup,
            horizon=horizon,
            seed=self.seed,
            generated=generated,
            completed=completed,
            zero_hop=zero_hop,
            in_flight_at_end=in_flight_at_horizon,
            mean_number=mean_copies,
            mean_remaining=mean_copies,
            mean_remaining_saturated=float("nan"),
            mean_delay=summary.mean,
            delay_half_width=summary.half_width,
            mean_delay_littles=mean_copies / self.total_rate,
            total_rate=self.total_rate,
            utilization=int_per_edge / horizon,
        )
