"""The result record every simulator returns."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Time-averaged quantities are exact integrals of the piecewise-constant
    sample path over the measurement window ``[warmup, warmup + horizon)``;
    per-packet quantities average over packets *born* inside the window
    (the run drains after the horizon so no completion is censored).

    Attributes
    ----------
    warmup, horizon, seed:
        Echo of the run configuration.
    generated, completed, zero_hop:
        Packets born in the measurement window; those that completed; and
        the subset with ``dst == src`` (they incur zero delay — the paper's
        convention allows them and the estimate's Little's-Law denominator
        counts them).
    in_flight_at_end:
        Packets still in the network when the horizon closed (all complete
        during the drain; this is a congestion indicator only).
    mean_number:
        Time-averaged number of packets in the network, E[N].
    mean_remaining:
        Time-averaged total remaining services, E[R] (Table II numerator).
    mean_remaining_saturated:
        Time-averaged remaining *saturated* services, E[R_s] (Table III
        numerator); ``nan`` when no saturated mask was supplied.
    mean_delay:
        Average packet delay T (generation to arrival, zero-hop packets
        included at delay 0).
    delay_half_width:
        ~95% batch-means confidence half-width on ``mean_delay``.
    mean_delay_littles:
        Independent delay estimator ``E[N] / total_rate`` via Little's Law;
        agreement with ``mean_delay`` is a built-in consistency check.
    total_rate:
        Total external packet generation rate used by Little's Law.
    utilization:
        Per-edge busy fraction over the window (empirically ~ ``lam_e *
        E[S_e]``), or None if not tracked.
    delays:
        Raw per-packet delays (only when collection was requested).
    number_distribution:
        Time-weighted distribution of N (only when requested): maps
        ``N -> fraction of time``.
    max_delay, max_queue_length:
        Worst observed per-packet delay and longest queue (only when
        maxima tracking was requested; ``nan`` / ``-1`` otherwise) — the
        worst-case quantities of Leighton's analyses, for contrast with
        this paper's averages.
    dropped:
        Measured packets lost to a full finite buffer (the finite-buffer
        engine only; always 0 for the infinite-buffer engines). A dropped
        packet leaves the system at the drop instant and never completes,
        so ``completed + dropped == generated`` after the drain.
    node_drops:
        Per-node drop counts (drops are attributed to the node holding
        the full buffer, i.e. the tail of the refused edge); ``None``
        unless the run enforced finite buffers.
    """

    warmup: float
    horizon: float
    seed: int
    generated: int
    completed: int
    zero_hop: int
    in_flight_at_end: int
    mean_number: float
    mean_remaining: float
    mean_remaining_saturated: float
    mean_delay: float
    delay_half_width: float
    mean_delay_littles: float
    total_rate: float
    utilization: np.ndarray | None = None
    delays: np.ndarray | None = None
    number_distribution: dict[int, float] | None = field(default=None)
    max_delay: float = float("nan")
    max_queue_length: int = -1
    dropped: int = 0
    node_drops: np.ndarray | None = None

    @property
    def loss_probability(self) -> float:
        """Fraction of measured packets lost to full buffers.

        ``dropped / generated`` — exactly 0 for the infinite-buffer
        engines, ``nan`` when no packet was generated in the window.
        """
        if self.generated <= 0:
            return float("nan")
        return self.dropped / self.generated

    @property
    def r(self) -> float:
        """Table II's ratio ``r = E[R] / E[N]`` — mean remaining services
        per in-flight packet."""
        if self.mean_number <= 0:
            return float("nan")
        return self.mean_remaining / self.mean_number

    @property
    def r_saturated(self) -> float:
        """Table III's ratio ``r_s = E[R_s] / E[N]``."""
        if self.mean_number <= 0:
            return float("nan")
        return self.mean_remaining_saturated / self.mean_number

    @property
    def littles_law_gap(self) -> float:
        """Relative disagreement between the two delay estimators.

        Small in equilibrium; large values signal an under-warmed or
        unstable run.
        """
        denom = max(abs(self.mean_delay), 1e-12)
        return abs(self.mean_delay - self.mean_delay_littles) / denom

    def summary_line(self) -> str:
        """One-line human-readable summary."""
        return (
            f"T={self.mean_delay:.3f}+/-{self.delay_half_width:.3f} "
            f"N={self.mean_number:.2f} r={self.r:.3f} rs={self.r_saturated:.3f} "
            f"packets={self.generated}"
        )
