"""Shared-memory cell snapshots for the replication fan-out.

The replication layer fans thousands of independent ``(cell, seed)``
replications over a warm process pool (:mod:`repro.util.workerpool`).
Before this module every pool task carried its whole context in the
pickled job payload — spec, calibrated rates, saturation mask — and every
worker rebuilt the cell's network *and re-routed every path* from
scratch. This module moves the read-only cell state into
``multiprocessing.shared_memory`` so it crosses the process boundary
exactly once per batch:

* the **path arena** ``int32`` edge table plus the complete dense
  ``(offset, length)`` path tables (:meth:`PathCache.table_snapshot`),
  warmed in the parent by :func:`warm_cell` for networks up to
  :data:`PRECOMPUTE_NODE_LIMIT` nodes — workers adopt a fully routed
  cache instead of rebuilding one per process;
* the **pinned per-source rates and their CDF** (non-scalar cells) and
  the **saturated-edge mask** — the larger resolved-cell arrays;
* one pickled **registry** describing the batch (specs plus array
  locators), appended to the same block, so a job payload shrinks to a
  ``(token, cell_index, position, seed_chunk)`` tuple of scalars.

Workers attach the block zero-copy (`SharedMemory(name=...)`` maps the
same pages; the only copy in the hand-off is materialising the arena's
Python list mirror once per worker). Attachment is memoized per batch
token and cells are memoized per cell identity, so a warm worker reuses
both across every ``run_many`` call of a sweep.

Cleanup contract
----------------
The parent is the single owner: :class:`SharedCellBatch` creates the
block and must be closed via :meth:`SharedCellBatch.close` (or the
:func:`publish_cells` context manager), which closes *and unlinks* it.
Workers only ever attach and close; POSIX keeps attached mappings valid
after the unlink, and because the parent unlinks every published name no
resource-tracker "leaked shared_memory" warnings are emitted at exit.

Cache adoption never changes simulation output: cache state is
RNG-neutral by the path-cache bit-identity contract, so a worker running
on an adopted snapshot is bit-identical to the serial in-process run —
pinned by the cross-engine parity tests in
``tests/test_sim_sharedcells.py``.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, Iterator, Sequence

import numpy as np

from repro.routing.pathcache import (
    PathCache,
    RandomizedGreedyPathCache,
    path_cache_for,
)
from repro.sim.registry import get_engine
from repro.sim.result import SimResult
from repro.util.validation import pinned_cdf

#: Largest network (node count) whose path cache the parent precomputes
#: and publishes in full. ``n*n`` dense tables plus the arena stay small
#: here (a 128-node mesh is ~16k pairs); larger networks keep the lazy
#: per-worker cache — their simulations touch a vanishing fraction of the
#: pair space, so eager routing would cost more than it saves.
PRECOMPUTE_NODE_LIMIT = 128

#: Byte alignment for arrays packed into the shared block.
_ALIGN = 64


# ----------------------------------------------------------------------
# Per-process (network, path cache) memo — used by the parent when
# publishing and by the serial path; workers keep their own copy of the
# module (fork) and therefore their own memo.

_NETWORK_MEMO: OrderedDict = OrderedDict()
_NETWORK_MEMO_MAX = 8


def cell_key(spec: Any) -> tuple:
    """The cell identity that decides (network, cache) shareability."""
    return (spec.engine, spec.engine_params, spec.scenario, spec.n, spec.params)


def cell_network(spec: Any) -> tuple:
    """The (network, path cache) for a cell, memoized per process.

    Replications of one cell are separate pool tasks; without the memo
    each task would rebuild the scenario network *and* re-route every
    path from scratch. A path cache only grows and never influences
    results, so sharing it across same-cell replications is safe. The
    key includes the engine name and engine_params so mixed-engine
    batches never hand one engine type a cache attuned to another.
    """
    from repro.scenarios import build_network  # late: scenarios imports sim

    key = cell_key(spec)
    ent = _NETWORK_MEMO.get(key)
    if ent is None:
        net = build_network(spec.scenario, spec.n, **spec.params_dict)
        ent = (net, path_cache_for(net.router))
        _NETWORK_MEMO[key] = ent
        if len(_NETWORK_MEMO) > _NETWORK_MEMO_MAX:
            _NETWORK_MEMO.popitem(last=False)
    else:
        _NETWORK_MEMO.move_to_end(key)
    return ent


def warm_cell(spec: Any) -> tuple:
    """Parent-side warm-up: build the cell and precompute its path cache.

    Precomputation is bounded by :data:`PRECOMPUTE_NODE_LIMIT` and only
    attempted on caches that support it; topologies whose pair space is
    partial (e.g. butterfly input-to-output routing) raise out of
    ``precompute_all`` and simply stay lazy.
    """
    net, cache = cell_network(spec)
    if (
        isinstance(cache, (PathCache, RandomizedGreedyPathCache))
        and not cache.complete
        and net.router.topology.num_nodes <= PRECOMPUTE_NODE_LIMIT
    ):
        try:
            cache.precompute_all()
        except ValueError:
            pass  # partial pair space: keep the lazy per-worker cache
    return net, cache


def _cache_snapshot(cache: Any) -> dict | None:
    """The publishable array set of a *complete* path cache, else None."""
    if isinstance(cache, PathCache):
        tab = cache.table_snapshot()
        if tab is None:
            return None
        return {
            "kind": "deterministic",
            "edges": cache.arena.as_array(),
            "off": tab[0],
            "len": tab[1],
        }
    if isinstance(cache, RandomizedGreedyPathCache):
        row = cache.row_first.table_snapshot()
        col = cache.col_first.table_snapshot()
        if row is None or col is None:
            return None
        return {
            "kind": "randomized",
            "edges": cache.arena.as_array(),
            "row_off": row[0],
            "row_len": row[1],
            "col_off": col[0],
            "col_len": col[1],
        }
    return None  # SampledPathInterner etc.: per-packet sampling anyway


class _Packer:
    """Accumulates arrays for one contiguous shared block."""

    def __init__(self) -> None:
        self.arrays: list[tuple[int, np.ndarray]] = []
        self.size = 0

    def add(self, arr: np.ndarray) -> tuple[int, str, tuple[int, ...]]:
        """Reserve space for ``arr``; returns its ``(offset, dtype, shape)``
        locator (the registry's array reference vocabulary)."""
        arr = np.ascontiguousarray(arr)
        off = -self.size % _ALIGN + self.size
        self.size = off + arr.nbytes
        self.arrays.append((off, arr))
        return (off, arr.dtype.str, arr.shape)


class SharedCellBatch:
    """Parent-side publisher: one shared block for a batch of cells.

    Parameters
    ----------
    entries:
        ``(spec, node_rate, mask)`` triples — one per cell, already
        resolved by :func:`repro.scenarios.resolve_cell`.

    Attributes
    ----------
    token:
        The picklable handle workers use to attach: ``(block name,
        registry offset, registry length)``. This plus two integers is
        the *entire* per-job payload.
    """

    def __init__(self, entries: Sequence[tuple]) -> None:
        packer = _Packer()
        cells: list[dict] = []
        for spec, node_rate, mask in entries:
            _net, cache = warm_cell(spec)
            meta: dict = {"spec": spec}
            if np.isscalar(node_rate):
                meta["node_rate"] = float(node_rate)
            else:
                rates = np.asarray(node_rate, dtype=np.float64)
                meta["rates"] = packer.add(rates)
                meta["source_cdf"] = packer.add(pinned_cdf(rates))
            if mask is not None:
                meta["mask"] = packer.add(np.asarray(mask))
            snap = _cache_snapshot(cache)
            if snap is not None:
                meta["cache"] = {
                    k: (v if k == "kind" else packer.add(v))
                    for k, v in snap.items()
                }
            cells.append(meta)
        registry = pickle.dumps(
            {"cells": cells}, protocol=pickle.HIGHEST_PROTOCOL
        )
        reg_off = -packer.size % _ALIGN + packer.size
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, reg_off + len(registry))
        )
        buf = self._shm.buf
        for off, arr in packer.arrays:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf, offset=off)
            dst[...] = arr
            del dst  # release the exported buffer before any close()
        buf[reg_off : reg_off + len(registry)] = registry
        self.num_cells = len(cells)
        self.token = (self._shm.name, reg_off, len(registry))

    def close(self) -> None:
        """Close *and unlink* the block (idempotent).

        Unlinking is what keeps the resource tracker quiet: the name is
        unregistered, workers' still-open attachments stay valid until
        they close or exit, and the pages are freed with the last close.
        """
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        self._shm = None


@contextmanager
def publish_cells(entries: Sequence[tuple]) -> Iterator[SharedCellBatch]:
    """Publish a batch of resolved cells; always unlink on the way out."""
    batch = SharedCellBatch(entries)
    try:
        yield batch
    finally:
        batch.close()


# ----------------------------------------------------------------------
# Worker side: attach, materialise, run.

_ATTACHED: OrderedDict = OrderedDict()
_ATTACHED_MAX = 4


class _AttachedBatch:
    """A worker's zero-copy view of one published batch."""

    def __init__(self, token: tuple) -> None:
        name, reg_off, reg_len = token
        self.shm = shared_memory.SharedMemory(name=name)
        self.registry = pickle.loads(
            bytes(self.shm.buf[reg_off : reg_off + reg_len])
        )

    def array(self, aref: tuple) -> np.ndarray:
        """Materialise an array locator as a read-only shared view."""
        off, dtype, shape = aref
        arr = np.ndarray(shape, dtype=dtype, buffer=self.shm.buf, offset=off)
        arr.setflags(write=False)
        return arr

    def release(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - cache still holds views
            # A memoized cell still references the block; the mapping is
            # reclaimed when the worker exits (the parent has unlinked
            # the name, so nothing leaks system-wide).
            pass


def _attach(token: tuple) -> _AttachedBatch:
    batch = _ATTACHED.get(token)
    if batch is None:
        batch = _ATTACHED[token] = _AttachedBatch(token)
        if len(_ATTACHED) > _ATTACHED_MAX:
            _, old = _ATTACHED.popitem(last=False)
            old.release()
    else:
        _ATTACHED.move_to_end(token)
    return batch


def _adopt_cell(spec: Any, meta: dict, batch: _AttachedBatch) -> tuple:
    """Build a cell's network and adopt its published cache snapshot."""
    from repro.scenarios import build_network  # late: scenarios imports sim

    key = cell_key(spec)
    ent = _NETWORK_MEMO.get(key)
    if ent is not None:
        _NETWORK_MEMO.move_to_end(key)
        return ent
    net = build_network(spec.scenario, spec.n, **spec.params_dict)
    cache = path_cache_for(net.router)
    snap = meta.get("cache")
    if snap is not None and len(cache.arena) == 0:
        if snap["kind"] == "deterministic":
            cache.arena.adopt_array(batch.array(snap["edges"]))
            cache.adopt_table(batch.array(snap["off"]), batch.array(snap["len"]))
        else:  # randomized: two order tables on one shared arena
            cache.arena.adopt_array(batch.array(snap["edges"]))
            cache.row_first.adopt_table(
                batch.array(snap["row_off"]), batch.array(snap["row_len"])
            )
            cache.col_first.adopt_table(
                batch.array(snap["col_off"]), batch.array(snap["col_len"])
            )
    ent = (net, cache)
    _NETWORK_MEMO[key] = ent
    if len(_NETWORK_MEMO) > _NETWORK_MEMO_MAX:
        _NETWORK_MEMO.popitem(last=False)
    return ent


def run_seed_chunk(job: tuple) -> tuple[int, int, list[SimResult]]:
    """Run one cell's seed chunk from a published batch (pool worker).

    ``job`` is ``(token, cell_index, position, seeds)`` — scalars and a
    small tuple only; everything heavy is read from shared memory. The
    return is tagged with ``(cell_index, position)`` so the streaming
    fold can slot results back into ``spec.seeds`` order regardless of
    completion order.
    """
    token, cell_idx, pos, seeds = job
    batch = _attach(token)
    meta = batch.registry["cells"][cell_idx]
    spec = meta["spec"]
    node_rate = (
        meta["node_rate"] if "node_rate" in meta else batch.array(meta["rates"])
    )
    mask = batch.array(meta["mask"]) if "mask" in meta else None
    net, cache = _adopt_cell(spec, meta, batch)
    run_cell = get_engine(spec.engine).run_cell
    return (
        cell_idx,
        pos,
        [run_cell(spec, seed, node_rate, mask, net, cache) for seed in seeds],
    )
