"""Multi-seed replication: one simulation cell, many seeds, pooled CIs.

Every table and figure of the paper is really "the same simulation cell,
replicated over seeds, over a grid of (n, rho) points". This module is the
single substrate for that pattern:

* :class:`CellSpec` — a declarative description of one cell: scenario
  (topology + router + destination law, resolved by
  :mod:`repro.scenarios`), load, engine (any name in
  :mod:`repro.sim.registry` — ``fifo``/``event``, ``slotted``,
  ``rushed``, ``ps``), service law, engine-specific knobs, measurement
  window and the seed set;
* :class:`ReplicationEngine` — fans the R seeded replications (of one cell
  or of a whole batch of cells at once) over the warm process pools of
  :mod:`repro.util.workerpool`, dispatching each replication through
  the engine registry;
* :class:`ReplicatedResult` — the pooled outcome: across-replication means
  with ~95% confidence half-widths, computed by the same
  :func:`repro.sim.measurement.batch_means` machinery the within-run delay
  CI uses (each replication is one "batch" of weight 1).

Replications are embarrassingly parallel — a cell is a pure function of
``(spec, seed)``. The parallel fan-out publishes each batch's read-only
cell state (path arena and dense path tables, pinned rates and CDF,
saturation mask) into shared memory once via
:mod:`repro.sim.sharedcells`, then streams tagged seed *chunks* through
``imap_unordered`` on a persistent warm pool, folding finished
replications back into ``spec.seeds`` order as they arrive. The serial
path (``processes=1``) never touches a pool or shared memory and is
bit-identical to the parallel path. The engine works identically for all
registered simulators; the slotted engine interprets the window in units
of ``tau``-slots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.sim.fifo_network import DETERMINISTIC
from repro.sim.measurement import BatchMeans, batch_means
#: SLOTTED is re-exported here for backward compatibility: it was this
#: module's public engine constant before the registry existed.
from repro.sim.registry import FIFO, canonical_engine, get_engine
from repro.sim.registry import SLOTTED as SLOTTED
from repro.sim.result import SimResult
from repro.sim.sharedcells import cell_network, publish_cells, run_seed_chunk
from repro.util.tables import Table
from repro.util.workerpool import get_pool, resolve_processes

#: Historical alias for the FIFO event-driven engine (still accepted by
#: ``CellSpec``; canonicalised to ``"fifo"`` on construction).
EVENT = "event"


@dataclass(frozen=True)
class CellSpec:
    """Declarative description of one replicated simulation cell.

    Attributes
    ----------
    scenario:
        Name in the :mod:`repro.scenarios` registry (topology, router and
        destination law; ``"uniform"`` is the paper's standard model).
    n:
        Scenario size parameter (mesh/torus side; hypercube dimension for
        the bit-reversal scenario).
    rho:
        Target network load ``max_e lam_e / phi_e``; resolved to a per-node
        rate by the scenario's calibration. Ignored when ``node_rate`` is
        given explicitly.
    node_rate:
        Explicit per-node rate (scalar, or a tuple aligned with the
        scenario's source nodes) overriding the ``rho`` calibration.
    convention:
        Load convention for the standard-model calibration (``"exact"`` or
        Table I's ``"table1"``); non-standard scenarios always calibrate
        exactly via the generic traffic solver.
    engine:
        Any name (or alias) in the engine registry
        (:mod:`repro.sim.registry`): ``"fifo"`` (alias ``"event"``, the
        event-driven FIFO simulator), ``"finite"`` (the finite-buffer
        loss variant), ``"slotted"``, ``"rushed"`` (Theorem 10 copies)
        or ``"ps"`` (the Theorem 5 processor-sharing comparator).
        Canonicalised on construction, so
        ``CellSpec(engine="event").engine == "fifo"``.
    service:
        Service law; each engine declares the laws it supports in the
        registry (only the FIFO engine supports ``"exponential"``).
    tau:
        Slot duration for the slotted engine.
    warmup, horizon:
        Measurement window in continuous time units; the slotted engine
        rounds to whole slots of duration ``tau``.
    seeds:
        One replication per seed. Defaults to 4 replications.
    track_saturated:
        Track R_s(t) against the scenario's saturated-edge mask
        (Table III); only engines whose registry entry sets
        ``supports_saturated`` accept this.
    track_maxima:
        Track the worst per-packet delay / longest queue (FIFO and
        slotted engines).
    collect_delays:
        Keep the raw per-packet delay samples on each replication's
        :class:`~repro.sim.result.SimResult` (engines whose registry
        entry sets ``supports_delays``); pooled across replications via
        :meth:`ReplicatedResult.pooled_delays`. The distribution-level
        validation checks (:mod:`repro.validation`) run on these samples.
    track_number_distribution:
        Record the time-weighted distribution of the number in system
        (engines with ``supports_number_distribution``; reference
        ``python`` backend only — the vectorized kernels never
        materialise the instantaneous N trajectory as a distribution).
    params:
        Scenario parameters as a tuple of ``(name, value)`` pairs, e.g.
        ``(("h", 0.3),)`` for the hot-spot mass (kept as a tuple so the
        spec stays hashable and picklable).
    engine_params:
        Engine-specific knobs as a tuple of ``(name, value)`` pairs,
        validated against the registry's typed :class:`EngineParam`
        metadata — e.g. ``(("event_queue", "heap"),)`` for the FIFO or
        rushed engines, ``(("batch_rng", False),)`` to opt the slotted
        engine back into the legacy draw order, or
        ``(("service_rates", 2.0),)`` wherever per-edge rates apply.
        Unknown names or ill-typed values raise at spec construction,
        not inside a worker process. Like ``params``, kept as a sorted
        tuple so the spec stays hashable and picklable.
    """

    scenario: str = "uniform"
    n: int = 8
    rho: float | None = None
    node_rate: float | tuple[float, ...] | None = None
    convention: str = "exact"
    engine: str = FIFO
    service: str = DETERMINISTIC
    tau: float = 1.0
    warmup: float = 300.0
    horizon: float = 3000.0
    seeds: tuple[int, ...] = (0, 1, 2, 3)
    track_saturated: bool = False
    track_maxima: bool = False
    collect_delays: bool = False
    track_number_distribution: bool = False
    params: tuple[tuple[str, object], ...] = ()
    engine_params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        # Canonicalise the engine name through the registry ("event" is
        # the historical alias for "fifo"); unknown names raise here.
        object.__setattr__(self, "engine", canonical_engine(self.engine))
        info = get_engine(self.engine)
        if self.service not in info.services:
            raise ValueError(
                f"the {info.name} engine only supports "
                f"{'/'.join(info.services)} service, got {self.service!r}"
            )
        object.__setattr__(
            self,
            "engine_params",
            tuple(sorted(self.engine_params, key=lambda kv: kv[0])),
        )
        ep = self.engine_params_dict
        if len(ep) != len(self.engine_params):
            raise ValueError("duplicate engine_params names")
        info.validate_params(ep)
        if self.rho is not None and ep.get("service_rates", 1.0) != 1.0:
            # Both rho calibrations (the standard-model closed forms and
            # the generic traffic solver) assume unit service rates, so a
            # rescaled phi would silently make "rho" mean a different
            # load. Force the caller to state the rate explicitly.
            raise ValueError(
                "rho load calibration assumes unit service rates; pass "
                "node_rate explicitly when overriding service_rates"
            )
        if self.track_saturated and not info.supports_saturated:
            raise ValueError(
                f"the {info.name} engine does not track saturated edges"
            )
        if self.track_maxima and not info.supports_maxima:
            raise ValueError(
                f"the {info.name} engine does not track per-packet maxima"
            )
        if self.track_maxima and ep.get("backend") == "numpy":
            # The vectorized kernels solve whole trajectories and never
            # materialise the instantaneous queue-length maxima; fail at
            # spec construction, not inside a worker process.
            raise ValueError(
                "backend='numpy' does not support track_maxima; use the "
                "default backend='python' to track per-packet maxima"
            )
        if self.collect_delays and not info.supports_delays:
            raise ValueError(
                f"the {info.name} engine does not collect per-packet "
                "delay samples"
            )
        if self.track_number_distribution and not info.supports_number_distribution:
            raise ValueError(
                f"the {info.name} engine does not track the "
                "number-in-system distribution"
            )
        if self.track_number_distribution and ep.get("backend") == "numpy":
            # Same whole-trajectory limitation as track_maxima above.
            raise ValueError(
                "backend='numpy' does not support track_number_distribution; "
                "use the default backend='python'"
            )
        if self.rho is None and self.node_rate is None:
            raise ValueError("one of rho or node_rate is required")
        if not self.seeds:
            raise ValueError("at least one replication seed is required")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("replication seeds must be distinct")

    @property
    def replications(self) -> int:
        """Number of replications (one per seed)."""
        return len(self.seeds)

    @property
    def params_dict(self) -> dict:
        """Scenario parameters as a dict."""
        return dict(self.params)

    @property
    def engine_params_dict(self) -> dict:
        """Engine-specific parameters as a dict."""
        return dict(self.engine_params)

    def with_params(self, **params) -> "CellSpec":
        """Copy of this spec with the given scenario parameters merged in."""
        merged = {**self.params_dict, **params}
        return replace(self, params=tuple(sorted(merged.items())))

    def with_engine_params(self, **params) -> "CellSpec":
        """Copy of this spec with the given engine knobs merged in."""
        merged = {**self.engine_params_dict, **params}
        return replace(self, engine_params=tuple(sorted(merged.items())))


def _pm(mean: float, half_width: float, digits: int) -> str:
    """Format ``mean +/- half_width``, dropping an undefined half-width."""
    if np.isfinite(half_width):
        return f"{mean:.{digits}f}+/-{half_width:.{digits}f}"
    return f"{mean:.{digits}f}"


def _pooled(values: Sequence[float]) -> BatchMeans:
    """Across-replication batch-means pooling (one batch per replication)."""
    vals = np.asarray([v for v in values if not np.isnan(v)], dtype=float)
    return batch_means(vals, np.ones_like(vals))


@dataclass
class ReplicatedResult:
    """R seeded :class:`~repro.sim.result.SimResult` runs of one cell,
    pooled into across-replication means and ~95% confidence intervals.

    Per-replication results stay available in :attr:`replications` (seed
    order follows ``spec.seeds``); the properties below pool them. With a
    single replication the across-replication half-widths fall back to the
    run's own within-run batch-means half-width for the delay (and ``nan``
    for the time averages), so single-seed callers keep an honest CI.
    """

    spec: CellSpec
    node_rate: float | tuple[float, ...]
    replications: list[SimResult]

    def pooled(self, attr: str) -> BatchMeans:
        """Across-replication pooling of any scalar ``SimResult`` field."""
        return _pooled([getattr(r, attr) for r in self.replications])

    # -- delay ---------------------------------------------------------
    @property
    def mean_delay(self) -> float:
        return self.pooled("mean_delay").mean

    @property
    def delay_half_width(self) -> float:
        if len(self.replications) == 1:
            return self.replications[0].delay_half_width
        return self.pooled("mean_delay").half_width

    # -- time averages -------------------------------------------------
    @property
    def mean_number(self) -> float:
        return self.pooled("mean_number").mean

    @property
    def number_half_width(self) -> float:
        return self.pooled("mean_number").half_width

    @property
    def r(self) -> float:
        return self.pooled("r").mean

    @property
    def r_saturated(self) -> float:
        return self.pooled("r_saturated").mean

    @property
    def littles_law_gap(self) -> float:
        """Worst across-replication Little's-Law disagreement."""
        return max(r.littles_law_gap for r in self.replications)

    # -- loss (the finite-buffer engine) -------------------------------
    @property
    def dropped(self) -> int:
        """Total measured packets lost across replications (0 for the
        infinite-buffer engines)."""
        return sum(r.dropped for r in self.replications)

    @property
    def loss_probability(self) -> float:
        """Across-replication mean loss probability."""
        return self.pooled("loss_probability").mean

    @property
    def loss_half_width(self) -> float:
        """~95% across-replication half-width on the loss probability
        (``nan`` with a single replication)."""
        return self.pooled("loss_probability").half_width

    # -- collected samples (validation harness) ------------------------
    def pooled_delays(self) -> np.ndarray:
        """All per-packet delay samples, concatenated in ``spec.seeds``
        order (requires ``spec.collect_delays``)."""
        if not self.spec.collect_delays:
            raise ValueError(
                "delays were not collected; build the CellSpec with "
                "collect_delays=True"
            )
        return np.concatenate([r.delays for r in self.replications])

    def pooled_number_distribution(self) -> dict[int, float]:
        """Across-replication average of the time-weighted N distribution
        (requires ``spec.track_number_distribution``)."""
        if not self.spec.track_number_distribution:
            raise ValueError(
                "the number distribution was not tracked; build the "
                "CellSpec with track_number_distribution=True"
            )
        pooled: dict[int, float] = {}
        for rep in self.replications:
            for k, frac in rep.number_distribution.items():
                pooled[k] = pooled.get(k, 0.0) + frac
        return {k: v / len(self.replications) for k, v in sorted(pooled.items())}

    # -- counts and extremes -------------------------------------------
    @property
    def generated(self) -> int:
        return sum(r.generated for r in self.replications)

    @property
    def total_rate(self) -> float:
        return self.replications[0].total_rate

    @property
    def max_delay(self) -> float:
        return max(r.max_delay for r in self.replications)

    @property
    def max_queue_length(self) -> int:
        return max(r.max_queue_length for r in self.replications)

    def summary_line(self) -> str:
        """One-line pooled summary."""
        return (
            f"{self.spec.scenario}(n={self.spec.n}) R={len(self.replications)} "
            f"T={self.mean_delay:.3f}+/-{self.delay_half_width:.3f} "
            f"N={self.mean_number:.2f} packets={self.generated}"
        )

    def render(self) -> str:
        """Per-replication rows plus the pooled row, as a monospace table."""
        t = Table(
            title=(
                f"ReplicatedResult: scenario={self.spec.scenario} "
                f"n={self.spec.n} engine={self.spec.engine} "
                f"R={len(self.replications)}"
            ),
            headers=["rep", "seed", "T", "N", "r", "littles gap", "packets"],
        )
        for k, (seed, rep) in enumerate(zip(self.spec.seeds, self.replications)):
            t.add_row(
                [
                    k,
                    seed,
                    rep.mean_delay,
                    rep.mean_number,
                    rep.r,
                    rep.littles_law_gap,
                    rep.generated,
                ]
            )
        t.add_row(
            [
                "pooled",
                "-",
                _pm(self.mean_delay, self.delay_half_width, 3),
                _pm(self.mean_number, self.number_half_width, 2),
                self.r,
                self.littles_law_gap,
                self.generated,
            ]
        )
        return t.render()


#: Backward-compatible alias: the per-process (network, path cache) memo
#: now lives in :mod:`repro.sim.sharedcells` (both the parent-side
#: publisher and the serial path draw from the same memo).
_cell_network = cell_network


def _run_replication(job: tuple) -> SimResult:
    """Run one seeded replication of a cell (top-level for pickling).

    Dispatches through the engine registry: any engine registered in
    :mod:`repro.sim.registry` runs here with no per-engine code.
    """
    spec, seed, node_rate, mask = job
    net, cache = _cell_network(spec)
    return get_engine(spec.engine).run_cell(spec, seed, node_rate, mask, net, cache)


class ReplicationEngine:
    """Fan seeded replications of simulation cells over a warm process pool.

    Parameters
    ----------
    processes:
        Worker count (``None`` resolves via ``REPRO_PROCESSES`` then the
        cpu count; ``1`` = serial in-process, bit-identical to parallel
        runs). Parallel runs draw workers from the shared warm pools of
        :func:`repro.util.workerpool.get_pool`, so one pool's workers —
        and their per-cell memos — serve a whole sweep.

    Examples
    --------
    >>> from repro.sim.replication import CellSpec, ReplicationEngine
    >>> spec = CellSpec(scenario="uniform", n=4, rho=0.5,
    ...                 warmup=50, horizon=400, seeds=(0, 1, 2))
    >>> pooled = ReplicationEngine(processes=1).run(spec)
    >>> pooled.mean_delay > 0 and pooled.delay_half_width > 0
    True
    """

    def __init__(self, *, processes: int | None = None) -> None:
        self.processes = processes

    def run(self, spec: CellSpec) -> ReplicatedResult:
        """Run one cell's replications (possibly in parallel)."""
        return self.run_many([spec])[0]

    def run_many(
        self,
        specs: Sequence[CellSpec],
        *,
        on_result: Callable[[ReplicatedResult], None] | None = None,
    ) -> list[ReplicatedResult]:
        """Run a batch of cells, fanning *all* (cell, seed) pairs at once.

        Flattening the batch before the pool sees it keeps the pool busy
        even when cells have very different lengths (the heavy rho = 0.99
        cells of Table III would otherwise serialise behind each other).
        The parallel path publishes the batch's cell state into shared
        memory once (:mod:`repro.sim.sharedcells`) and streams tagged
        seed chunks through ``imap_unordered``, folding replications into
        their cells incrementally; returned results (and each cell's
        replications) always follow input/``spec.seeds`` order.

        Parameters
        ----------
        on_result:
            Optional callback fired once per *completed* cell, in
            completion order (input order on the serial path). Lets
            long sweeps checkpoint results as they land instead of
            waiting for the whole batch.
        """
        from repro.scenarios import resolve_cell  # late: scenarios imports us

        cells = [(spec, *resolve_cell(spec)) for spec in specs]
        nproc = resolve_processes(self.processes)
        total = sum(len(spec.seeds) for spec in specs)
        if nproc == 1 or total <= 1:
            # Serial in-process path: no pool, no shared memory — the
            # debuggable reference the parallel path is pinned against.
            out: list[ReplicatedResult] = []
            for spec, node_rate, mask in cells:
                net, cache = cell_network(spec)
                run_cell = get_engine(spec.engine).run_cell
                result = ReplicatedResult(
                    spec=spec,
                    node_rate=node_rate,
                    replications=[
                        run_cell(spec, seed, node_rate, mask, net, cache)
                        for seed in spec.seeds
                    ],
                )
                out.append(result)
                if on_result is not None:
                    on_result(result)
            return out

        # Chunk each cell's seeds so dispatch overhead amortises while
        # the pool still load-balances (~4 chunks per worker per cell).
        slots: list[list[SimResult | None]] = [
            [None] * len(spec.seeds) for spec in specs
        ]
        pending = [len(spec.seeds) for spec in specs]
        results: list[ReplicatedResult | None] = [None] * len(specs)
        with publish_cells(cells) as batch:
            jobs: list[tuple] = []
            for idx, (spec, _node_rate, _mask) in enumerate(cells):
                per = max(1, -(-len(spec.seeds) // (4 * nproc)))
                for pos in range(0, len(spec.seeds), per):
                    jobs.append(
                        (batch.token, idx, pos, spec.seeds[pos : pos + per])
                    )
            pool = get_pool(nproc)
            for idx, pos, reps in pool.imap_unordered(run_seed_chunk, jobs):
                slots[idx][pos : pos + len(reps)] = reps
                pending[idx] -= len(reps)
                if pending[idx] == 0:
                    spec, node_rate, _mask = cells[idx]
                    results[idx] = ReplicatedResult(
                        spec=spec,
                        node_rate=node_rate,
                        replications=list(slots[idx]),
                    )
                    if on_result is not None:
                        on_result(results[idx])
        return list(results)


def replicate(
    spec: CellSpec, *, processes: int | None = None
) -> ReplicatedResult:
    """Convenience wrapper: run one cell through a fresh engine."""
    return ReplicationEngine(processes=processes).run(spec)
