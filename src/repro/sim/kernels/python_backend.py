"""The reference (interpreted) kernels, extracted verbatim from the engines.

Each ``run_*`` function is the pre-extraction body of the corresponding
engine's ``run`` method with ``self`` renamed to ``sim`` — nothing else.
The RNG draw order, the event pop order and the floating-point
accumulation order are therefore exactly those of the pre-kernels
engines, and the golden fixtures (``tests/golden/``) pass unchanged:
this module *is* the same-seed bit-identity reference that the numpy
backend's distribution-parity tests compare against.

The engines keep argument validation; kernels receive validated state
and own only the hot loop plus the result assembly.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

from repro.sim.eventqueue import make_event_queue
from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.sim.rng import make_rng

_BLOCK = 8192

EXPONENTIAL = "exponential"


def run_fifo(
    sim: Any,
    warmup: float,
    horizon: float,
    *,
    track_utilization: bool = False,
    collect_delays: bool = False,
    track_number_distribution: bool = False,
    track_maxima: bool = False,
    delay_batches: int = 32,
) -> SimResult:
    """The FIFO event-driven loops (monotone merge + pluggable queue)."""
    rng = make_rng(sim.seed, engine="fifo", backend="python")
    t_end = warmup + horizon

    destinations = sim.destinations
    exponential = sim.service == EXPONENTIAL
    st = sim._service_times
    sat = sim._sat
    num_nodes = sim.topology.num_nodes
    num_edges = sim.topology.num_edges
    queues: list[deque] = [deque() for _ in range(num_edges)]
    busy = bytearray(num_edges)

    # Path cache bindings. Deterministic caches get the dict probe
    # inlined in the loop; RNG-consuming caches (randomized greedy, the
    # uncached interner) go through sample_offlen, preserving the
    # per-packet draw order of the pre-cache engine.
    cache = sim.path_cache
    arena = cache.arena.edges  # extended in place; safe to bind once
    if cache.consumes_rng:
        det_get = None
        det_build = None
        sample_offlen = cache.sample_offlen
    else:
        det_get = cache.table.get
        det_build = cache.ensure
        sample_offlen = None

    seq = 0

    # Block RNG: exponential(1) variates and uniform source/dest ids.
    exp_block = rng.exponential(size=_BLOCK)
    exp_i = 0
    sources = sim.source_nodes
    nsrc = len(sources)
    uniform_fast = sim._fast_ids
    uniform_sources = sim._uniform_sources
    source_cdf = None if uniform_sources else sim._source_cdf
    if uniform_fast:
        id_block = rng.integers(0, num_nodes, size=2 * _BLOCK).tolist()
        id_i = 0
    else:
        id_block = None
        id_i = 0
    gap_scale = 1.0 / sim.total_rate

    # Statistics.
    in_system = 0
    remaining = 0
    remaining_sat = 0
    int_n = 0.0
    int_r = 0.0
    int_rs = 0.0
    last_t = 0.0
    generated = completed = zero_hop = 0
    delay_acc = TimeBatchAccumulator(warmup, t_end, delay_batches)
    delays: list[float] | None = [] if collect_delays else None
    util = np.zeros(num_edges) if track_utilization else None
    ndist: dict[int, float] | None = {} if track_number_distribution else None
    max_delay = 0.0
    max_queue = 0
    searchsorted = np.searchsorted
    dest_sample = destinations.sample

    def service_sample(e: int) -> float:
        nonlocal exp_i, exp_block
        if not exponential:
            return st[e]
        if exp_i >= _BLOCK:
            exp_block = rng.exponential(size=_BLOCK)
            exp_i = 0
        v = exp_block[exp_i] * st[e]
        exp_i += 1
        return v

    def start_service_heap(e: int, t: float, pkt: list) -> None:
        nonlocal seq
        s = service_sample(e)
        pushe((t + s, seq, e, pkt))
        seq += 1
        if util is not None:
            lo = t if t > warmup else warmup
            hi = t + s if t + s < t_end else t_end
            if hi > lo:
                util[e] += hi - lo

    # First arrival (the merged-Poisson sentinel).
    first_gap = exp_block[exp_i] * gap_scale
    exp_i += 1

    draining = False
    in_flight_at_horizon = 0
    # Queues standing when the warmup ends are part of the measurement
    # window: seed max_queue with them at the crossing, so the gate on
    # later updates only excludes growth that ended before the window.
    maxima_seeded = not track_maxima or warmup == 0.0
    BLK = _BLOCK
    TWO_BLOCK = 2 * _BLOCK
    # The common standard-model configuration (no saturation mask, no
    # N-distribution, no maxima, no utilization) gets a lean loop with
    # every untracked branch removed; the arithmetic that remains is
    # identical, so results are bit-identical across loop variants.
    plain_stats = (
        sat is None and ndist is None and not track_maxima and util is None
    )

    if sim._uniform_service and plain_stats:
        # -------- monotone-merge event loop, plain statistics --------
        service_c = st[0]
        dep_q: deque = deque()
        dep_pop = dep_q.popleft
        dep_append = dep_q.append
        arr_t = first_gap
        arr_seq = seq
        seq += 1
        have_arrival = True
        while True:
            if dep_q:
                head = dep_q[0]
                if have_arrival:
                    ht = head[0]
                    if arr_t < ht or (arr_t == ht and arr_seq < head[1]):
                        is_arrival = True
                        t = arr_t
                    else:
                        is_arrival = False
                        t, _s, e, pkt = dep_pop()
                else:
                    is_arrival = False
                    t, _s, e, pkt = dep_pop()
            elif have_arrival:
                is_arrival = True
                t = arr_t
            else:
                break
            if t >= t_end and not draining:
                draining = True
                in_flight_at_horizon = in_system
                # Close the integrals exactly at the horizon boundary.
                lo = last_t if last_t > warmup else warmup
                if t_end > lo:
                    dt = t_end - lo
                    int_n += in_system * dt
                    int_r += remaining * dt
                last_t = t_end
            if not draining and t > warmup:
                lo = last_t if last_t > warmup else warmup
                dt = t - lo
                if dt > 0.0:
                    int_n += in_system * dt
                    int_r += remaining * dt
                last_t = t
            elif not draining:
                last_t = t

            if is_arrival:
                # ----- external arrival -----
                if draining:
                    have_arrival = False  # no arrivals past the horizon
                    continue
                if uniform_fast:
                    if id_i >= TWO_BLOCK:
                        id_block = rng.integers(
                            0, num_nodes, size=TWO_BLOCK
                        ).tolist()
                        id_i = 0
                    src = id_block[id_i]
                    dst = id_block[id_i + 1]
                    id_i += 2
                else:
                    if uniform_sources:
                        src = sources[int(rng.integers(nsrc))]
                    else:
                        src = sources[
                            int(
                                searchsorted(
                                    source_cdf, rng.random(), side="right"
                                )
                            )
                        ]
                    dst = dest_sample(src, rng)
                measured = t >= warmup
                if measured:
                    generated += 1
                if src == dst:
                    if measured:
                        zero_hop += 1
                        completed += 1
                        delay_acc.add(t, 0.0)
                        if delays is not None:
                            delays.append(0.0)
                else:
                    if det_get is not None:
                        ol = det_get(src * num_nodes + dst)
                        if ol is None:
                            ol = det_build(src, dst)
                        off, ln = ol
                    else:
                        off, ln = sample_offlen(src, dst, rng)
                    in_system += 1
                    remaining += ln
                    # Fresh per-packet record: the queues mutate it in
                    # place, so it cannot be pooled.
                    new_pkt = [t, off, ln, 0, measured]  # replint: disable=hot-loop-alloc
                    f = arena[off]
                    if busy[f]:
                        queues[f].append(new_pkt)
                    else:
                        busy[f] = 1
                        dep_append((t + service_c, seq, f, new_pkt))
                        seq += 1
                # Next arrival.
                if exp_i >= BLK:
                    exp_block = rng.exponential(size=BLK)
                    exp_i = 0
                arr_t = t + exp_block[exp_i] * gap_scale
                exp_i += 1
                arr_seq = seq
                seq += 1
            else:
                # ----- departure: pkt finished service at edge e -----
                remaining -= 1
                hop = pkt[3] + 1
                if hop == pkt[2]:
                    in_system -= 1
                    if pkt[4]:
                        completed += 1
                        d = t - pkt[0]
                        delay_acc.add(pkt[0], d)
                        if delays is not None:
                            delays.append(d)
                else:
                    pkt[3] = hop
                    f = arena[pkt[1] + hop]
                    if busy[f]:
                        queues[f].append(pkt)
                    else:
                        busy[f] = 1
                        dep_append((t + service_c, seq, f, pkt))
                        seq += 1
                q = queues[e]
                if q:
                    dep_append((t + service_c, seq, e, q.popleft()))
                    seq += 1
                else:
                    busy[e] = 0
    elif sim._uniform_service:
        # ---------------- monotone-merge event loop ----------------
        # All service times equal => departures are pushed with
        # nondecreasing times, so a FIFO deque plus the single pending
        # arrival replays the heap's (time, seq) pop order exactly.
        service_c = st[0]
        dep_q: deque = deque()
        dep_pop = dep_q.popleft
        dep_append = dep_q.append
        arr_t = first_gap
        arr_seq = seq
        seq += 1
        have_arrival = True
        while True:
            if dep_q:
                head = dep_q[0]
                if have_arrival:
                    ht = head[0]
                    if arr_t < ht or (arr_t == ht and arr_seq < head[1]):
                        is_arrival = True
                        t = arr_t
                    else:
                        is_arrival = False
                        t, _s, e, pkt = dep_pop()
                else:
                    is_arrival = False
                    t, _s, e, pkt = dep_pop()
            elif have_arrival:
                is_arrival = True
                t = arr_t
            else:
                break
            if not maxima_seeded and t >= warmup:
                maxima_seeded = True
                for q in queues:
                    if len(q) > max_queue:
                        max_queue = len(q)
            if t >= t_end and not draining:
                draining = True
                in_flight_at_horizon = in_system
                # Close the integrals exactly at the horizon boundary.
                lo = last_t if last_t > warmup else warmup
                if t_end > lo:
                    dt = t_end - lo
                    int_n += in_system * dt
                    int_r += remaining * dt
                    int_rs += remaining_sat * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t_end
            if not draining and t > warmup:
                lo = last_t if last_t > warmup else warmup
                dt = t - lo
                if dt > 0.0:
                    int_n += in_system * dt
                    int_r += remaining * dt
                    int_rs += remaining_sat * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t
            elif not draining:
                last_t = t

            if is_arrival:
                # ----- external arrival -----
                if draining:
                    have_arrival = False  # no arrivals past the horizon
                    continue
                if uniform_fast:
                    if id_i >= TWO_BLOCK:
                        id_block = rng.integers(
                            0, num_nodes, size=TWO_BLOCK
                        ).tolist()
                        id_i = 0
                    src = id_block[id_i]
                    dst = id_block[id_i + 1]
                    id_i += 2
                else:
                    if uniform_sources:
                        src = sources[int(rng.integers(nsrc))]
                    else:
                        # side="right" so a draw that lands exactly on
                        # a CDF boundary (e.g. u = 0.0 with a leading
                        # zero-rate source) never selects a zero-rate
                        # source.
                        src = sources[
                            int(
                                searchsorted(
                                    source_cdf, rng.random(), side="right"
                                )
                            )
                        ]
                    dst = dest_sample(src, rng)
                measured = t >= warmup
                if measured:
                    generated += 1
                if src == dst:
                    if measured:
                        zero_hop += 1
                        completed += 1
                        delay_acc.add(t, 0.0)
                        if delays is not None:
                            delays.append(0.0)
                else:
                    if det_get is not None:
                        ol = det_get(src * num_nodes + dst)
                        if ol is None:
                            ol = det_build(src, dst)
                        off, ln = ol
                    else:
                        off, ln = sample_offlen(src, dst, rng)
                    in_system += 1
                    remaining += ln
                    if sat is not None:
                        nsat = 0
                        for k in range(off, off + ln):
                            if sat[arena[k]]:
                                nsat += 1
                        remaining_sat += nsat
                    # Fresh per-packet record: the queues mutate it in
                    # place, so it cannot be pooled.
                    new_pkt = [t, off, ln, 0, measured]  # replint: disable=hot-loop-alloc
                    f = arena[off]
                    if busy[f]:
                        q = queues[f]
                        q.append(new_pkt)
                        if (
                            track_maxima
                            and measured
                            and not draining
                            and len(q) > max_queue
                        ):
                            max_queue = len(q)
                    else:
                        busy[f] = 1
                        dep_append((t + service_c, seq, f, new_pkt))
                        seq += 1
                        if util is not None:
                            lo = t if t > warmup else warmup
                            hi = t + service_c
                            if hi > t_end:
                                hi = t_end
                            if hi > lo:
                                util[f] += hi - lo
                # Next arrival.
                if exp_i >= BLK:
                    exp_block = rng.exponential(size=BLK)
                    exp_i = 0
                arr_t = t + exp_block[exp_i] * gap_scale
                exp_i += 1
                arr_seq = seq
                seq += 1
            else:
                # ----- departure: pkt finished service at edge e -----
                remaining -= 1
                if sat is not None and sat[e]:
                    remaining_sat -= 1
                hop = pkt[3] + 1
                if hop == pkt[2]:
                    in_system -= 1
                    if pkt[4]:
                        completed += 1
                        d = t - pkt[0]
                        delay_acc.add(pkt[0], d)
                        if track_maxima and d > max_delay:
                            max_delay = d
                        if delays is not None:
                            delays.append(d)
                else:
                    pkt[3] = hop
                    f = arena[pkt[1] + hop]
                    if busy[f]:
                        qf = queues[f]
                        qf.append(pkt)
                        if (
                            track_maxima
                            and not draining
                            and t >= warmup
                            and len(qf) > max_queue
                        ):
                            max_queue = len(qf)
                    else:
                        busy[f] = 1
                        dep_append((t + service_c, seq, f, pkt))
                        seq += 1
                        if util is not None:
                            lo = t if t > warmup else warmup
                            hi = t + service_c
                            if hi > t_end:
                                hi = t_end
                            if hi > lo:
                                util[f] += hi - lo
                q = queues[e]
                if q:
                    nxt = q.popleft()
                    dep_append((t + service_c, seq, e, nxt))
                    seq += 1
                    if util is not None:
                        lo = t if t > warmup else warmup
                        hi = t + service_c
                        if hi > t_end:
                            hi = t_end
                        if hi > lo:
                            util[e] += hi - lo
                else:
                    busy[e] = 0
    else:
        # ------------------ event-queue loop ------------------
        # Exponential or per-edge deterministic service: departure
        # times are not monotone, so a priority queue orders them —
        # the calendar queue by default, the binary heap on request
        # (both pop the identical (time, seq) order), with the
        # arrival sentinel merged in. The calendar bucket width is
        # one mean arrival gap: the event rate is roughly the
        # arrival rate times the mean hop count, so a bucket holds
        # on the order of one route's worth of events — enough to
        # amortise the day-heap traffic, small enough that the
        # activation sort and same-bucket insorts stay cheap.
        evq = make_event_queue(sim.event_queue, width=gap_scale)
        pushe = evq.push
        pope = evq.pop
        pushe((first_gap, seq, -1, None))
        seq += 1
        fast_service = not exponential and util is None
        while evq:
            t, _s, e, pkt = pope()
            if not maxima_seeded and t >= warmup:
                maxima_seeded = True
                for q in queues:
                    if len(q) > max_queue:
                        max_queue = len(q)
            if t >= t_end and not draining:
                draining = True
                in_flight_at_horizon = in_system
                # Close the integrals exactly at the horizon boundary.
                lo = last_t if last_t > warmup else warmup
                if t_end > lo:
                    dt = t_end - lo
                    int_n += in_system * dt
                    int_r += remaining * dt
                    int_rs += remaining_sat * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t_end
            if not draining and t > warmup:
                lo = last_t if last_t > warmup else warmup
                dt = t - lo
                if dt > 0.0:
                    int_n += in_system * dt
                    int_r += remaining * dt
                    int_rs += remaining_sat * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t
            elif not draining:
                last_t = t

            if e < 0:
                # ----- external arrival -----
                if draining:
                    continue  # no arrivals past the horizon
                if uniform_fast:
                    if id_i >= TWO_BLOCK:
                        id_block = rng.integers(
                            0, num_nodes, size=TWO_BLOCK
                        ).tolist()
                        id_i = 0
                    src = id_block[id_i]
                    dst = id_block[id_i + 1]
                    id_i += 2
                else:
                    if uniform_sources:
                        src = sources[int(rng.integers(nsrc))]
                    else:
                        src = sources[
                            int(
                                searchsorted(
                                    source_cdf, rng.random(), side="right"
                                )
                            )
                        ]
                    dst = dest_sample(src, rng)
                measured = t >= warmup
                if measured:
                    generated += 1
                if src == dst:
                    if measured:
                        zero_hop += 1
                        completed += 1
                        delay_acc.add(t, 0.0)
                        if delays is not None:
                            delays.append(0.0)
                else:
                    if det_get is not None:
                        ol = det_get(src * num_nodes + dst)
                        if ol is None:
                            ol = det_build(src, dst)
                        off, ln = ol
                    else:
                        off, ln = sample_offlen(src, dst, rng)
                    in_system += 1
                    remaining += ln
                    if sat is not None:
                        nsat = 0
                        for k in range(off, off + ln):
                            if sat[arena[k]]:
                                nsat += 1
                        remaining_sat += nsat
                    # Fresh per-packet record: the queues mutate it in
                    # place, so it cannot be pooled.
                    new_pkt = [t, off, ln, 0, measured]  # replint: disable=hot-loop-alloc
                    f = arena[off]
                    if busy[f]:
                        q = queues[f]
                        q.append(new_pkt)
                        if (
                            track_maxima
                            and measured
                            and not draining
                            and len(q) > max_queue
                        ):
                            max_queue = len(q)
                    else:
                        busy[f] = 1
                        if fast_service:
                            pushe((t + st[f], seq, f, new_pkt))
                            seq += 1
                        else:
                            start_service_heap(f, t, new_pkt)
                # Next arrival.
                if exp_i >= BLK:
                    exp_block = rng.exponential(size=BLK)
                    exp_i = 0
                pushe((t + exp_block[exp_i] * gap_scale, seq, -1, None))
                exp_i += 1
                seq += 1
            else:
                # ----- departure: pkt finished service at edge e -----
                remaining -= 1
                if sat is not None and sat[e]:
                    remaining_sat -= 1
                hop = pkt[3] + 1
                if hop == pkt[2]:
                    in_system -= 1
                    if pkt[4]:
                        completed += 1
                        d = t - pkt[0]
                        delay_acc.add(pkt[0], d)
                        if track_maxima and d > max_delay:
                            max_delay = d
                        if delays is not None:
                            delays.append(d)
                else:
                    pkt[3] = hop
                    f = arena[pkt[1] + hop]
                    if busy[f]:
                        qf = queues[f]
                        qf.append(pkt)
                        if (
                            track_maxima
                            and not draining
                            and t >= warmup
                            and len(qf) > max_queue
                        ):
                            max_queue = len(qf)
                    else:
                        busy[f] = 1
                        if fast_service:
                            pushe((t + st[f], seq, f, pkt))
                            seq += 1
                        else:
                            start_service_heap(f, t, pkt)
                q = queues[e]
                if q:
                    nxt = q.popleft()
                    if fast_service:
                        pushe((t + st[e], seq, e, nxt))
                        seq += 1
                    else:
                        start_service_heap(e, t, nxt)
                else:
                    busy[e] = 0

    # If the run never reached the horizon (cannot happen: the arrival
    # sentinel always carries the clock forward), close integrals.
    if last_t < t_end:
        lo = last_t if last_t > warmup else warmup
        dt = t_end - lo
        int_n += in_system * dt
        int_r += remaining * dt
        int_rs += remaining_sat * dt
        if ndist is not None:
            ndist[in_system] = ndist.get(in_system, 0.0) + dt

    mean_number = int_n / horizon
    summary = delay_acc.summary()
    if ndist is not None:
        total_dt = sum(ndist.values())
        ndist = {k: v / total_dt for k, v in sorted(ndist.items())}
    return SimResult(
        warmup=warmup,
        horizon=horizon,
        seed=sim.seed,
        generated=generated,
        completed=completed,
        zero_hop=zero_hop,
        in_flight_at_end=in_flight_at_horizon,
        mean_number=mean_number,
        mean_remaining=int_r / horizon,
        mean_remaining_saturated=(
            int_rs / horizon if sat is not None else float("nan")
        ),
        mean_delay=summary.mean,
        delay_half_width=summary.half_width,
        mean_delay_littles=mean_number / sim.total_rate,
        total_rate=sim.total_rate,
        utilization=util / horizon if util is not None else None,
        delays=np.asarray(delays) if delays is not None else None,
        number_distribution=ndist,
        max_delay=max_delay if track_maxima else float("nan"),
        max_queue_length=max_queue if track_maxima else -1,
    )


def run_slotted(
    sim: Any,
    warmup_slots: int,
    horizon_slots: int,
    *,
    delay_batches: int = 32,
    track_maxima: bool = False,
    collect_delays: bool = False,
    batch_rng: bool = True,
) -> SimResult:
    """The slotted slot loop (compat and batched draw orders)."""
    rng = make_rng(sim.seed, engine="slotted", backend="python")
    tau = sim.tau
    warmup = warmup_slots * tau
    horizon = horizon_slots * tau
    t_end_slot = warmup_slots + horizon_slots
    batch_mean = sim.total_rate * tau
    num_nodes = sim.topology.num_nodes
    sat = sim._sat

    uniform_sources = sim._uniform_sources
    fast_ids = sim._fast_ids
    sources = sim.source_nodes
    source_arr = np.asarray(sources, dtype=np.int64)
    nsrc = len(sources)
    source_cdf = sim._source_cdf
    destinations = sim.destinations
    dest_sample = destinations.sample
    dest_sample_batch = getattr(destinations, "sample_batch", None)
    dest_rng_free = not getattr(destinations, "consumes_rng", True)

    cache = sim.path_cache
    arena = cache.arena.edges  # extended in place; safe to bind once
    cache_rng_free = not cache.consumes_rng
    if cache_rng_free:
        offlen_batch = cache.offlen_batch
        det_get = cache.table.get
        det_build = cache.ensure
    else:
        offlen_batch = None
        det_get = det_build = None
    sample_offlen = cache.sample_offlen
    sample_offlen_batch = cache.sample_offlen_batch
    # Which vectorized kernel may run under the legacy-stream contract:
    # fast id pairs, or consecutive source draws with an RNG-free law.
    compat_pairs = fast_ids and cache_rng_free
    compat_src_batch = dest_rng_free and cache_rng_free

    queues: list[deque] = [deque() for _ in range(sim.topology.num_edges)]
    active: set[int] = set()
    in_system = 0
    remaining = 0
    remaining_sat = 0
    int_n = int_r = int_rs = 0.0
    generated = completed = zero_hop = 0
    in_flight_at_horizon = 0
    delay_acc = TimeBatchAccumulator(warmup, warmup + horizon, delay_batches)
    delays: list[float] | None = [] if collect_delays else None
    max_delay = 0.0
    max_queue = 0
    maxima_seeded = not track_maxima or warmup_slots == 0
    count_block: list[int] = []
    count_i = 0
    counts_drawn = 0

    slot = 0
    while True:
        t = slot * tau
        measuring = warmup_slots <= slot < t_end_slot
        draining = slot >= t_end_slot
        if draining and in_system == 0:
            break
        if not maxima_seeded and slot >= warmup_slots:
            # Queues standing at the warmup crossing belong to the
            # measurement window (event-engine parity).
            maxima_seeded = True
            for q in queues:
                if len(q) > max_queue:
                    max_queue = len(q)
        # --- batch arrivals at slot start ---
        if not draining:
            if batch_rng:
                if count_i >= len(count_block):
                    size = min(_BLOCK, t_end_slot - counts_drawn)
                    count_block = rng.poisson(batch_mean, size=size).tolist()
                    counts_drawn += size
                    count_i = 0
                k = count_block[count_i]
                count_i += 1
            else:
                # Legacy per-slot draw order (batch_rng=False): one scalar
                # Poisson per slot is the pinned compat stream — blocking
                # it would change draw order and break the slotted_*_compat
                # golden cells.
                k = int(rng.poisson(batch_mean))  # replint: disable=rng-discipline
            if k:
                # Draw the slot's sources/destinations/paths. Every
                # branch enqueues packets in identical order; they
                # differ only in how many RNG calls produce the draws.
                offs = lens = None
                if compat_pairs:
                    ids = rng.integers(0, num_nodes, size=2 * k)
                    srcs_a = ids[0::2]
                    dsts_a = ids[1::2]
                elif batch_rng or compat_src_batch:
                    if uniform_sources:
                        srcs_a = source_arr[rng.integers(0, nsrc, size=k)]
                    else:
                        srcs_a = source_arr[
                            np.searchsorted(
                                source_cdf, rng.random(k), side="right"
                            )
                        ]
                    # Batch boundary: the per-slot destination batch is
                    # drawn (and boxed) once per slot, not per packet.
                    if dest_sample_batch is not None:
                        dsts_a = np.asarray(dest_sample_batch(srcs_a, rng))  # replint: disable=hot-loop-alloc
                    else:
                        dsts_a = np.asarray(  # replint: disable=hot-loop-alloc
                            [dest_sample(int(s), rng) for s in srcs_a.tolist()]  # replint: disable=hot-loop-alloc
                        )
                else:
                    # Interleaved data-dependent draws: keep the legacy
                    # scalar order (bit-identity), path-cached below.
                    srcs_a = dsts_a = None
                if srcs_a is not None:
                    nz = srcs_a != dsts_a
                    if nz.any():
                        if cache_rng_free:
                            offs, lens = offlen_batch(srcs_a[nz], dsts_a[nz])
                        else:
                            offs, lens = sample_offlen_batch(
                                srcs_a[nz], dsts_a[nz], rng
                            )
                        offs = offs.tolist()
                        lens = lens.tolist()
                    srcs = srcs_a.tolist()
                    dsts = dsts_a.tolist()
                at = 0  # index into offs/lens (non-zero-hop packets)
                for i in range(k):
                    if srcs_a is not None:
                        src = srcs[i]
                        dst = dsts[i]
                    else:
                        if uniform_sources:
                            src = sources[int(rng.integers(nsrc))]
                        else:
                            # side="right": a boundary draw must not
                            # pick a zero-rate source (see the event
                            # engine).
                            src = sources[
                                int(
                                    np.searchsorted(
                                        source_cdf,
                                        rng.random(),
                                        side="right",
                                    )
                                )
                            ]
                        dst = dest_sample(src, rng)
                    if measuring:
                        generated += 1
                    if src == dst:
                        if measuring:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                            if delays is not None:
                                delays.append(0.0)
                        continue
                    if offs is not None:
                        off = offs[at]
                        ln = lens[at]
                        at += 1
                    elif det_get is not None:
                        ol = det_get(src * num_nodes + dst)
                        if ol is None:
                            ol = det_build(src, dst)
                        off, ln = ol
                    else:
                        off, ln = sample_offlen(src, dst, rng)
                    in_system += 1
                    remaining += ln
                    if sat is not None:
                        nsat = 0
                        for e_i in range(off, off + ln):
                            if sat[arena[e_i]]:
                                nsat += 1
                        remaining_sat += nsat
                    f = arena[off]
                    q = queues[f]
                    # Fresh per-packet record (see run_fifo).
                    q.append([t, off, ln, 0, measuring])  # replint: disable=hot-loop-alloc
                    active.add(f)
                    if track_maxima and measuring and len(q) > max_queue:
                        max_queue = len(q)
        # --- per-slot occupancy integrals (state during the slot) ---
        if measuring:
            int_n += in_system * tau
            int_r += remaining * tau
            int_rs += remaining_sat * tau
        if slot + 1 == t_end_slot:
            in_flight_at_horizon = in_system
        # --- simultaneous transmission: one head per non-empty edge ---
        # Per-slot staging lists: sized by this slot's active edges, and
        # consumed before the next slot — pooling would just re-clear them.
        deliveries = []  # replint: disable=hot-loop-alloc
        emptied = []  # replint: disable=hot-loop-alloc
        for e in active:
            pkt = queues[e].popleft()
            deliveries.append(pkt)
            if not queues[e]:
                emptied.append(e)
        for e in emptied:
            active.discard(e)
        arrive_t = t + tau
        for pkt in deliveries:
            remaining -= 1
            if sat is not None and sat[arena[pkt[1] + pkt[3]]]:
                remaining_sat -= 1
            hop = pkt[3] + 1
            if hop == pkt[2]:
                in_system -= 1
                if pkt[4]:
                    completed += 1
                    d = arrive_t - pkt[0]
                    delay_acc.add(pkt[0], d)
                    if track_maxima and d > max_delay:
                        max_delay = d
                    if delays is not None:
                        delays.append(d)
            else:
                pkt[3] = hop
                f = arena[pkt[1] + hop]
                qf = queues[f]
                qf.append(pkt)
                active.add(f)
                if track_maxima and measuring and len(qf) > max_queue:
                    max_queue = len(qf)
        slot += 1

    mean_number = int_n / horizon
    summary = delay_acc.summary()
    return SimResult(
        warmup=warmup,
        horizon=horizon,
        seed=sim.seed,
        generated=generated,
        completed=completed,
        zero_hop=zero_hop,
        in_flight_at_end=in_flight_at_horizon,
        mean_number=mean_number,
        mean_remaining=int_r / horizon,
        mean_remaining_saturated=(
            int_rs / horizon if sat is not None else float("nan")
        ),
        mean_delay=summary.mean,
        delay_half_width=summary.half_width,
        mean_delay_littles=mean_number / sim.total_rate,
        total_rate=sim.total_rate,
        delays=np.asarray(delays) if delays is not None else None,
        max_delay=max_delay if track_maxima else float("nan"),
        max_queue_length=max_queue if track_maxima else -1,
    )


def run_finite(
    sim: Any,
    warmup: float,
    horizon: float,
    *,
    track_utilization: bool = False,
    collect_delays: bool = False,
    track_number_distribution: bool = False,
    track_maxima: bool = False,
    delay_batches: int = 32,
) -> SimResult:
    """The finite-buffer tail-drop loops (merge + pluggable queue).

    Only called with resolved per-edge caps (``sim._edge_caps`` not
    ``None``); the engine delegates the infinite-buffer case to the FIFO
    kernel before dispatching here.
    """
    rng = make_rng(sim.seed, engine="finite", backend="python")
    t_end = warmup + horizon

    destinations = sim.destinations
    exponential = sim.service == EXPONENTIAL
    st = sim._service_times
    sat = sim._sat
    cap = sim._edge_caps
    tail = sim._edge_tail
    num_nodes = sim.topology.num_nodes
    num_edges = sim.topology.num_edges
    queues: list[deque] = [deque() for _ in range(num_edges)]
    busy = bytearray(num_edges)

    # Path cache bindings (see run_fifo).
    cache = sim.path_cache
    arena = cache.arena.edges  # extended in place; safe to bind once
    if cache.consumes_rng:
        det_get = None
        det_build = None
        sample_offlen = cache.sample_offlen
    else:
        det_get = cache.table.get
        det_build = cache.ensure
        sample_offlen = None

    seq = 0

    # Block RNG: exponential(1) variates and uniform source/dest ids.
    exp_block = rng.exponential(size=_BLOCK)
    exp_i = 0
    sources = sim.source_nodes
    nsrc = len(sources)
    uniform_fast = sim._fast_ids
    uniform_sources = sim._uniform_sources
    source_cdf = None if uniform_sources else sim._source_cdf
    if uniform_fast:
        id_block = rng.integers(0, num_nodes, size=2 * _BLOCK).tolist()
        id_i = 0
    else:
        id_block = None
        id_i = 0
    gap_scale = 1.0 / sim.total_rate

    # Statistics (drop accounting on top of the FIFO set).
    in_system = 0
    remaining = 0
    remaining_sat = 0
    int_n = 0.0
    int_r = 0.0
    int_rs = 0.0
    last_t = 0.0
    generated = completed = zero_hop = 0
    dropped = 0
    node_drops = [0] * num_nodes
    delay_acc = TimeBatchAccumulator(warmup, t_end, delay_batches)
    delays: list[float] | None = [] if collect_delays else None
    util = np.zeros(num_edges) if track_utilization else None
    ndist: dict[int, float] | None = {} if track_number_distribution else None
    max_delay = 0.0
    max_queue = 0
    searchsorted = np.searchsorted
    dest_sample = destinations.sample

    def service_sample(e: int) -> float:
        nonlocal exp_i, exp_block
        if not exponential:
            return st[e]
        if exp_i >= _BLOCK:
            exp_block = rng.exponential(size=_BLOCK)
            exp_i = 0
        v = exp_block[exp_i] * st[e]
        exp_i += 1
        return v

    def start_service_heap(e: int, t: float, pkt: list) -> None:
        nonlocal seq
        s = service_sample(e)
        pushe((t + s, seq, e, pkt))
        seq += 1
        if util is not None:
            lo = t if t > warmup else warmup
            hi = t + s if t + s < t_end else t_end
            if hi > lo:
                util[e] += hi - lo

    first_gap = exp_block[exp_i] * gap_scale
    exp_i += 1

    draining = False
    in_flight_at_horizon = 0
    maxima_seeded = not track_maxima or warmup == 0.0
    BLK = _BLOCK
    TWO_BLOCK = 2 * _BLOCK

    if sim._uniform_service:
        # ---------------- monotone-merge event loop ----------------
        # Drops never schedule events, so departure pushes stay
        # nondecreasing and the FIFO merge structure carries over
        # unchanged (same (time, seq) pop order as the heap would
        # give, same arithmetic when nothing drops).
        service_c = st[0]
        dep_q: deque = deque()
        dep_pop = dep_q.popleft
        dep_append = dep_q.append
        arr_t = first_gap
        arr_seq = seq
        seq += 1
        have_arrival = True
        while True:
            if dep_q:
                head = dep_q[0]
                if have_arrival:
                    ht = head[0]
                    if arr_t < ht or (arr_t == ht and arr_seq < head[1]):
                        is_arrival = True
                        t = arr_t
                    else:
                        is_arrival = False
                        t, _s, e, pkt = dep_pop()
                else:
                    is_arrival = False
                    t, _s, e, pkt = dep_pop()
            elif have_arrival:
                is_arrival = True
                t = arr_t
            else:
                break
            if not maxima_seeded and t >= warmup:
                maxima_seeded = True
                for q in queues:
                    if len(q) > max_queue:
                        max_queue = len(q)
            if t >= t_end and not draining:
                draining = True
                in_flight_at_horizon = in_system
                lo = last_t if last_t > warmup else warmup
                if t_end > lo:
                    dt = t_end - lo
                    int_n += in_system * dt
                    int_r += remaining * dt
                    int_rs += remaining_sat * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t_end
            if not draining and t > warmup:
                lo = last_t if last_t > warmup else warmup
                dt = t - lo
                if dt > 0.0:
                    int_n += in_system * dt
                    int_r += remaining * dt
                    int_rs += remaining_sat * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t
            elif not draining:
                last_t = t

            if is_arrival:
                # ----- external arrival -----
                if draining:
                    have_arrival = False  # no arrivals past the horizon
                    continue
                if uniform_fast:
                    if id_i >= TWO_BLOCK:
                        id_block = rng.integers(
                            0, num_nodes, size=TWO_BLOCK
                        ).tolist()
                        id_i = 0
                    src = id_block[id_i]
                    dst = id_block[id_i + 1]
                    id_i += 2
                else:
                    if uniform_sources:
                        src = sources[int(rng.integers(nsrc))]
                    else:
                        src = sources[
                            int(
                                searchsorted(
                                    source_cdf, rng.random(), side="right"
                                )
                            )
                        ]
                    dst = dest_sample(src, rng)
                measured = t >= warmup
                if measured:
                    generated += 1
                if src == dst:
                    if measured:
                        zero_hop += 1
                        completed += 1
                        delay_acc.add(t, 0.0)
                        if delays is not None:
                            delays.append(0.0)
                else:
                    if det_get is not None:
                        ol = det_get(src * num_nodes + dst)
                        if ol is None:
                            ol = det_build(src, dst)
                        off, ln = ol
                    else:
                        off, ln = sample_offlen(src, dst, rng)
                    f = arena[off]
                    if busy[f] and len(queues[f]) >= cap[f]:
                        # Entry buffer full: the packet never enters.
                        if measured:
                            dropped += 1
                            node_drops[tail[f]] += 1
                    else:
                        in_system += 1
                        remaining += ln
                        if sat is not None:
                            nsat = 0
                            for k in range(off, off + ln):
                                if sat[arena[k]]:
                                    nsat += 1
                            remaining_sat += nsat
                        # Fresh per-packet record (see run_fifo).
                        new_pkt = [t, off, ln, 0, measured]  # replint: disable=hot-loop-alloc
                        if busy[f]:
                            q = queues[f]
                            q.append(new_pkt)
                            if (
                                track_maxima
                                and measured
                                and not draining
                                and len(q) > max_queue
                            ):
                                max_queue = len(q)
                        else:
                            busy[f] = 1
                            dep_append((t + service_c, seq, f, new_pkt))
                            seq += 1
                            if util is not None:
                                lo = t if t > warmup else warmup
                                hi = t + service_c
                                if hi > t_end:
                                    hi = t_end
                                if hi > lo:
                                    util[f] += hi - lo
                # Next arrival.
                if exp_i >= BLK:
                    exp_block = rng.exponential(size=BLK)
                    exp_i = 0
                arr_t = t + exp_block[exp_i] * gap_scale
                exp_i += 1
                arr_seq = seq
                seq += 1
            else:
                # ----- departure: pkt finished service at edge e -----
                remaining -= 1
                if sat is not None and sat[e]:
                    remaining_sat -= 1
                hop = pkt[3] + 1
                if hop == pkt[2]:
                    in_system -= 1
                    if pkt[4]:
                        completed += 1
                        d = t - pkt[0]
                        delay_acc.add(pkt[0], d)
                        if track_maxima and d > max_delay:
                            max_delay = d
                        if delays is not None:
                            delays.append(d)
                else:
                    f = arena[pkt[1] + hop]
                    if busy[f] and len(queues[f]) >= cap[f]:
                        # Mid-route drop: the packet leaves with its
                        # unserved hops still on the books.
                        in_system -= 1
                        remaining -= pkt[2] - hop
                        if sat is not None:
                            nsat = 0
                            for k in range(pkt[1] + hop, pkt[1] + pkt[2]):
                                if sat[arena[k]]:
                                    nsat += 1
                            remaining_sat -= nsat
                        if pkt[4]:
                            dropped += 1
                            node_drops[tail[f]] += 1
                    else:
                        pkt[3] = hop
                        if busy[f]:
                            qf = queues[f]
                            qf.append(pkt)
                            if (
                                track_maxima
                                and not draining
                                and t >= warmup
                                and len(qf) > max_queue
                            ):
                                max_queue = len(qf)
                        else:
                            busy[f] = 1
                            dep_append((t + service_c, seq, f, pkt))
                            seq += 1
                            if util is not None:
                                lo = t if t > warmup else warmup
                                hi = t + service_c
                                if hi > t_end:
                                    hi = t_end
                                if hi > lo:
                                    util[f] += hi - lo
                q = queues[e]
                if q:
                    nxt = q.popleft()
                    dep_append((t + service_c, seq, e, nxt))
                    seq += 1
                    if util is not None:
                        lo = t if t > warmup else warmup
                        hi = t + service_c
                        if hi > t_end:
                            hi = t_end
                        if hi > lo:
                            util[e] += hi - lo
                else:
                    busy[e] = 0
    else:
        # ------------------ event-queue loop ------------------
        # Exponential or per-edge deterministic service (see run_fifo):
        # the pluggable event queue orders departures; drops simply
        # skip the enqueue.
        evq = make_event_queue(sim.event_queue, width=gap_scale)
        pushe = evq.push
        pope = evq.pop
        pushe((first_gap, seq, -1, None))
        seq += 1
        fast_service = not exponential and util is None
        while evq:
            t, _s, e, pkt = pope()
            if not maxima_seeded and t >= warmup:
                maxima_seeded = True
                for q in queues:
                    if len(q) > max_queue:
                        max_queue = len(q)
            if t >= t_end and not draining:
                draining = True
                in_flight_at_horizon = in_system
                lo = last_t if last_t > warmup else warmup
                if t_end > lo:
                    dt = t_end - lo
                    int_n += in_system * dt
                    int_r += remaining * dt
                    int_rs += remaining_sat * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t_end
            if not draining and t > warmup:
                lo = last_t if last_t > warmup else warmup
                dt = t - lo
                if dt > 0.0:
                    int_n += in_system * dt
                    int_r += remaining * dt
                    int_rs += remaining_sat * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t
            elif not draining:
                last_t = t

            if e < 0:
                # ----- external arrival -----
                if draining:
                    continue  # no arrivals past the horizon
                if uniform_fast:
                    if id_i >= TWO_BLOCK:
                        id_block = rng.integers(
                            0, num_nodes, size=TWO_BLOCK
                        ).tolist()
                        id_i = 0
                    src = id_block[id_i]
                    dst = id_block[id_i + 1]
                    id_i += 2
                else:
                    if uniform_sources:
                        src = sources[int(rng.integers(nsrc))]
                    else:
                        src = sources[
                            int(
                                searchsorted(
                                    source_cdf, rng.random(), side="right"
                                )
                            )
                        ]
                    dst = dest_sample(src, rng)
                measured = t >= warmup
                if measured:
                    generated += 1
                if src == dst:
                    if measured:
                        zero_hop += 1
                        completed += 1
                        delay_acc.add(t, 0.0)
                        if delays is not None:
                            delays.append(0.0)
                else:
                    if det_get is not None:
                        ol = det_get(src * num_nodes + dst)
                        if ol is None:
                            ol = det_build(src, dst)
                        off, ln = ol
                    else:
                        off, ln = sample_offlen(src, dst, rng)
                    f = arena[off]
                    if busy[f] and len(queues[f]) >= cap[f]:
                        if measured:
                            dropped += 1
                            node_drops[tail[f]] += 1
                    else:
                        in_system += 1
                        remaining += ln
                        if sat is not None:
                            nsat = 0
                            for k in range(off, off + ln):
                                if sat[arena[k]]:
                                    nsat += 1
                            remaining_sat += nsat
                        # Fresh per-packet record (see run_fifo).
                        new_pkt = [t, off, ln, 0, measured]  # replint: disable=hot-loop-alloc
                        if busy[f]:
                            q = queues[f]
                            q.append(new_pkt)
                            if (
                                track_maxima
                                and measured
                                and not draining
                                and len(q) > max_queue
                            ):
                                max_queue = len(q)
                        else:
                            busy[f] = 1
                            if fast_service:
                                pushe((t + st[f], seq, f, new_pkt))
                                seq += 1
                            else:
                                start_service_heap(f, t, new_pkt)
                # Next arrival.
                if exp_i >= BLK:
                    exp_block = rng.exponential(size=BLK)
                    exp_i = 0
                pushe((t + exp_block[exp_i] * gap_scale, seq, -1, None))
                exp_i += 1
                seq += 1
            else:
                # ----- departure: pkt finished service at edge e -----
                remaining -= 1
                if sat is not None and sat[e]:
                    remaining_sat -= 1
                hop = pkt[3] + 1
                if hop == pkt[2]:
                    in_system -= 1
                    if pkt[4]:
                        completed += 1
                        d = t - pkt[0]
                        delay_acc.add(pkt[0], d)
                        if track_maxima and d > max_delay:
                            max_delay = d
                        if delays is not None:
                            delays.append(d)
                else:
                    f = arena[pkt[1] + hop]
                    if busy[f] and len(queues[f]) >= cap[f]:
                        in_system -= 1
                        remaining -= pkt[2] - hop
                        if sat is not None:
                            nsat = 0
                            for k in range(pkt[1] + hop, pkt[1] + pkt[2]):
                                if sat[arena[k]]:
                                    nsat += 1
                            remaining_sat -= nsat
                        if pkt[4]:
                            dropped += 1
                            node_drops[tail[f]] += 1
                    else:
                        pkt[3] = hop
                        if busy[f]:
                            qf = queues[f]
                            qf.append(pkt)
                            if (
                                track_maxima
                                and not draining
                                and t >= warmup
                                and len(qf) > max_queue
                            ):
                                max_queue = len(qf)
                        else:
                            busy[f] = 1
                            if fast_service:
                                pushe((t + st[f], seq, f, pkt))
                                seq += 1
                            else:
                                start_service_heap(f, t, pkt)
                q = queues[e]
                if q:
                    nxt = q.popleft()
                    if fast_service:
                        pushe((t + st[e], seq, e, nxt))
                        seq += 1
                    else:
                        start_service_heap(e, t, nxt)
                else:
                    busy[e] = 0

    if last_t < t_end:
        lo = last_t if last_t > warmup else warmup
        dt = t_end - lo
        int_n += in_system * dt
        int_r += remaining * dt
        int_rs += remaining_sat * dt
        if ndist is not None:
            ndist[in_system] = ndist.get(in_system, 0.0) + dt

    mean_number = int_n / horizon
    summary = delay_acc.summary()
    if ndist is not None:
        total_dt = sum(ndist.values())
        ndist = {k: v / total_dt for k, v in sorted(ndist.items())}
    return SimResult(
        warmup=warmup,
        horizon=horizon,
        seed=sim.seed,
        generated=generated,
        completed=completed,
        zero_hop=zero_hop,
        in_flight_at_end=in_flight_at_horizon,
        mean_number=mean_number,
        mean_remaining=int_r / horizon,
        mean_remaining_saturated=(
            int_rs / horizon if sat is not None else float("nan")
        ),
        mean_delay=summary.mean,
        delay_half_width=summary.half_width,
        mean_delay_littles=mean_number / sim.total_rate,
        total_rate=sim.total_rate,
        utilization=util / horizon if util is not None else None,
        delays=np.asarray(delays) if delays is not None else None,
        number_distribution=ndist,
        max_delay=max_delay if track_maxima else float("nan"),
        max_queue_length=max_queue if track_maxima else -1,
        dropped=dropped,
        node_drops=np.asarray(node_drops, dtype=np.int64),
    )
