"""Kernel backends: the engines' hot loops as swappable implementations.

The FIFO, slotted and finite-buffer engines route their hot loops through
this package, selected by the ``backend`` constructor knob (and the
``backend`` :class:`~repro.sim.registry.EngineParam` on the facade):

``"python"`` (the default)
    The extracted reference loops (:mod:`repro.sim.kernels.python_backend`)
    — byte-for-byte the pre-extraction engine bodies, so they remain
    bound by the same-seed bit-identity contract and the golden fixtures
    pass unchanged.
``"numpy"``
    Vectorized kernels (:mod:`repro.sim.kernels.numpy_backend`) that
    solve the whole trajectory over the path arena's ``int32`` snapshot
    with batched draws and a feedforward max-plus level sweep. Not
    draw-order-identical — pinned by distribution-level parity tests
    instead (see the two-backend contract in :mod:`repro.sim`).

Optional-dependency boundary
----------------------------
This selection module is deliberately **numpy-free**: it probes numpy
availability through ``importlib.util.find_spec`` without importing it,
and :mod:`repro.sim.kernels.numpy_backend` is imported only when a run
actually selects ``backend="numpy"``. The honest statement of the
boundary: the engines (and therefore the python backend) require numpy
like the rest of the package, but the *vectorized backend module* is
never touched by ``backend="python"`` runs — a subprocess test pins
that, and a second one pins that this module still imports, reports
unavailability and raises the clear validation error when numpy itself
is absent. The ``fast`` extra in ``setup.py`` documents the same
boundary for installers.
"""

from __future__ import annotations

import importlib.util
from typing import Any, Callable

#: Canonical backend names, in default-first order.
PYTHON_BACKEND, NUMPY_BACKEND = "python", "numpy"
KERNEL_BACKENDS = (PYTHON_BACKEND, NUMPY_BACKEND)

#: Kernel entry points every backend module may provide (``run_<name>``).
FIFO_KERNEL, SLOTTED_KERNEL, FINITE_KERNEL = "fifo", "slotted", "finite"


def numpy_available() -> bool:
    """Whether numpy is installed (probed without importing it)."""
    return importlib.util.find_spec("numpy") is not None


def check_backend(backend: str) -> str:
    """Validate a backend name, including numpy availability.

    Returns the name unchanged so constructors can assign the checked
    value in one expression; raises ``ValueError`` with an actionable
    message otherwise (the same message the registry's ``backend``
    :class:`~repro.sim.registry.EngineParam` validation produces).
    """
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"backend must be one of {'/'.join(KERNEL_BACKENDS)}, "
            f"got {backend!r}"
        )
    if backend == NUMPY_BACKEND and not numpy_available():
        raise ValueError(
            "backend='numpy' requires numpy, which is not installed — "
            "install the 'fast' extra (pip install repro[fast]) or use "
            "backend='python'"
        )
    return backend


def get_kernel(engine: str, backend: str) -> Callable[..., Any]:
    """The ``run_<engine>`` entry point of the selected backend.

    Backend modules are imported lazily, so ``backend="python"`` runs
    never import :mod:`repro.sim.kernels.numpy_backend` (the
    optional-dependency boundary above).
    """
    check_backend(backend)
    if backend == PYTHON_BACKEND:
        from repro.sim.kernels import python_backend as mod
    else:
        from repro.sim.kernels import numpy_backend as mod
    kernel = getattr(mod, f"run_{engine}", None)
    if kernel is None:
        raise ValueError(
            f"backend {backend!r} provides no {engine!r} kernel "
            f"(available: "
            f"{', '.join(sorted(n[4:] for n in dir(mod) if n.startswith('run_')))})"
        )
    return kernel
