"""Vectorized kernels: whole-trajectory max-plus solves over the arena.

Instead of replaying the event loop, these kernels exploit the structure
of the two regimes the python backend's hot loops already isolate:

* **uniform deterministic FIFO service** (the event engine's
  monotone-merge regime) — at a single FIFO server with constant service
  time ``c`` the departure of the ``k``-th arrival (in arrival order) is
  the Lindley recurrence ``d_k = max(x_k, d_{k-1}) + c``, which has the
  closed form ``d_k = (k+1)c + cummax_j<=k (x_j - j c)``: one segmented
  cumulative maximum per edge, no loop over events;
* **slotted unit transmissions** — the integer analogue
  ``d_k = max(g_k, d_{k-1} + 1) = k + cummax(g_j - j)`` over eligibility
  slots ``g``.

Whole-network solve: when the route set is *feedforward* — the
edge-precedence relation "``e`` is visited immediately before ``f`` on
some used path" is acyclic, true for dimension-ordered routing on
meshes, k-d arrays, hypercubes and butterflies — edges can be processed
level by level. All hop-0 eligibility times are known (packet creation),
so level-0 edges are solved with one segmented cummax, their departures
become the eligibility times of the next hops, and so on. Torus
wraparound or mixed-order randomized routes create precedence cycles;
the kernels detect that and raise a ``ValueError`` pointing back to
``backend='python'``.

The arena's ``int32`` snapshot (``PathArena.gather``) is the canonical
input: visits are the concatenation of every routed packet's path, and
all statistics (occupancy/remaining-work integrals, delay batch means,
in-flight counts) are exact window-overlap reductions over the per-visit
departure times — the same integrals the reference loops accumulate
incrementally.

Contract
--------
Draws are seed-stable but **not** draw-order-identical to the python
backend (one blocked draw per kind for the whole run, not per event or
per slot); parity is pinned at distribution level — see the two-backend
contract in :mod:`repro.sim`. The draw order, for regression pinning:

* fifo: exponential gap blocks (cumulative arrival times) until the
  horizon is passed; then one id-pair block (fast-id networks) or one
  source block (uniform integers, or one ``random(m)`` + CDF
  ``searchsorted(..., side="right")``) followed by one destination
  ``sample_batch``; then one batch path lookup for the routed pairs.
* slotted: per-slot Poisson counts in 8192-size blocks (the same block
  discipline as the python backend's ``batch_rng=True``), then the same
  id/source/destination/path batches as fifo, once for all slots.

Unsupported options raise ``ValueError`` rather than silently diverge:
``track_utilization``, ``track_number_distribution`` and
``track_maxima`` (order statistics need the event interleaving),
slotted ``batch_rng=False`` (the legacy compat stream is per-packet by
definition), finite buffers (state-dependent admission breaks the
max-plus decomposition; rejected at construction), and non-uniform or
exponential service for fifo (rejected at construction).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.sim.rng import make_rng

_BLOCK = 8192

#: Cells above this in a level's (segments x max-run) cummax rectangle
#: switch to the per-segment loop to bound memory.
_RECT_LIMIT = 1 << 25

_NEG = np.iinfo(np.int32).min // 2

_I16_MAX = np.iinfo(np.int16).max


def _reject(option: str, engine: str) -> None:
    raise ValueError(
        f"backend='numpy' does not support {option} on the {engine} "
        f"engine (it needs the event interleaving); use backend='python'"
    )


def _edge_levels(
    num_edges: int, prev: np.ndarray, nxt: np.ndarray
) -> np.ndarray:
    """Topological level of every edge under the used-path precedence.

    ``lvl[e] = 0`` for edges never preceded on any used path, else one
    more than the deepest predecessor. Computed as a vectorized fixpoint
    over the deduplicated consecutive-visit pairs ``prev -> nxt``; a
    route set with a precedence cycle never converges and is rejected
    within ``#distinct edges + 1`` sweeps.
    """
    lvl = np.zeros(num_edges, dtype=np.int64)
    if prev.size == 0:
        return lvl
    pairs = np.unique(prev * num_edges + nxt)
    prev = pairs // num_edges
    nxt = pairs % num_edges
    distinct = np.unique(np.concatenate((prev, nxt))).size
    for _ in range(distinct + 1):
        new = lvl.copy()
        np.maximum.at(new, nxt, lvl[prev] + 1)
        if np.array_equal(new, lvl):
            return lvl
        lvl = new
    raise ValueError(
        "backend='numpy' requires feedforward routing (an acyclic "
        "edge-precedence relation over the used paths); this route set "
        "has a cycle — e.g. torus wraparound or mixed-order randomized "
        "routes — use backend='python'"
    )


def _levels_for(
    cache: Any, num_edges: int, visit_edge: np.ndarray, is_first: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-visit edge levels for this run, memoized on the path cache.

    Returns ``(lvl, lvl_vis)`` — the per-edge assignment and its
    per-visit gather. A level assignment is valid for a run iff
    ``lvl[f] > lvl[e]`` for every consecutive visit pair ``e -> f`` the
    run actually uses, so a cached assignment (computed from an earlier
    run over the same arena) is revalidated with one vectorized pass
    and only recomputed when a new seed routes a pair the old
    assignment does not cover.
    """
    cached = getattr(cache, "_kernel_levels", None)
    if cached is not None and cached.size == num_edges:
        lvl_vis = cached[visit_edge]
        if bool(np.all((lvl_vis[1:] > lvl_vis[:-1]) | is_first[1:])):
            return cached, lvl_vis
    mask = ~is_first[1:]  # consecutive visits of the same packet
    prev = visit_edge[:-1][mask].astype(np.int64)
    nxt = visit_edge[1:][mask].astype(np.int64)
    lvl = _edge_levels(num_edges, prev, nxt)
    if int(lvl.max()) < _I16_MAX:
        # int16 levels: the level sort's radix pass then needs no cast.
        lvl = lvl.astype(np.int16)
    try:
        cache._kernel_levels = lvl
    except AttributeError:  # slotted storage without a cache attribute
        pass
    return lvl, lvl[visit_edge]


def _segments(
    e_sorted: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Start offsets, per-element segment id and within-segment index of
    the equal-edge runs of an edge-sorted array."""
    n = e_sorted.size
    diff = e_sorted[1:] != e_sorted[:-1]
    seg_id = np.zeros(n, dtype=np.int32)
    np.cumsum(diff, out=seg_id[1:])
    starts = np.flatnonzero(np.concatenate(([True], diff)))
    idx = np.arange(n, dtype=np.int32) - starts.astype(np.int32)[seg_id]
    return starts, seg_id, idx


def _rectangle_cummax(
    seg_id: np.ndarray,
    idx: np.ndarray,
    shifted: np.ndarray,
    sentinel: float,
    dtype: Any,
) -> np.ndarray:
    """Segmented cumulative max via one (segments x max-run) rectangle."""
    n_seg = int(seg_id[-1]) + 1
    width = int(idx.max()) + 1
    mat = np.full((n_seg, width), sentinel, dtype=dtype)
    mat[seg_id, idx] = shifted
    np.maximum.accumulate(mat, axis=1, out=mat)
    return mat[seg_id, idx]


def _loop_cummax(starts: np.ndarray, shifted: np.ndarray) -> np.ndarray:
    """Segmented cumulative max via a per-segment loop (memory fallback)."""
    out = shifted.copy()
    bounds = np.append(starts, shifted.size)
    for s0, s1 in zip(bounds[:-1], bounds[1:]):
        np.maximum.accumulate(out[s0:s1], out=out[s0:s1])
    return out


def _sorted_by_edge_then(
    key: np.ndarray, e_s: np.ndarray, e_span: int
) -> np.ndarray:
    """Indices sorting by ``e_s`` with ``key``'s order inside each edge:
    one comparison sort on ``key``, then a stable int16 radix pass on
    the edge ids when they fit (they are topology edge ids, so they do
    for every paper-scale network)."""
    o1 = np.argsort(key)
    if e_s.size == 0:
        return o1
    e_o = e_s[o1]
    if e_span < _I16_MAX:
        return o1[np.argsort(e_o.astype(np.int16), kind="stable")]
    return o1[np.argsort(e_o, kind="stable")]


def _fifo_departures(
    e_s: np.ndarray, x_s: np.ndarray, c: float, e_span: int
) -> np.ndarray:
    """Departure times of one level's visits: FIFO order is arrival
    order (float eligibility ties have measure zero)."""
    order = _sorted_by_edge_then(x_s, e_s, e_span)
    e_o = e_s[order]
    x_o = x_s[order]
    starts, seg_id, idx = _segments(e_o)
    shifted = x_o - idx * c
    if len(starts) * (int(idx.max()) + 1) <= _RECT_LIMIT:
        cm = _rectangle_cummax(seg_id, idx, shifted, -np.inf, np.float64)
    else:
        cm = _loop_cummax(starts, shifted)
    d = np.empty_like(x_s)
    d[order] = cm + (idx + 1) * c
    return d


def _slot_departures(
    e_s: np.ndarray, g_s: np.ndarray, is_new: np.ndarray, e_span: int
) -> np.ndarray:
    """Departure slots of one level's visits. Queue (join) order at an
    edge is exactly ``(eligibility slot, movers-before-new-arrivals)``:
    slot-``s`` arrivals join before end-of-slot-``s`` movers, which join
    before slot-``s+1`` arrivals, and the movers' eligibility is
    ``s + 1``. Equal joins keep the input (visit) order — a
    distribution-level tie only; the reference engine's same-slot mover
    order is set-iteration order."""
    # Both keys are small non-negative ints, so two stable int16 radix
    # passes replace the 4-pass comparison lexsort. Stability chains:
    # the second pass (by edge) preserves the first pass's
    # (slot, movers-first, visit-order) order within each edge.
    g0 = int(g_s.min()) if g_s.size else 0
    g_span = (int(g_s.max()) - g0 + 1) if g_s.size else 1
    k1 = ((g_s - g0) << 1) + is_new
    if 2 * g_span < _I16_MAX and e_span < _I16_MAX:
        o1 = np.argsort(k1.astype(np.int16), kind="stable")
        order = o1[np.argsort(e_s[o1].astype(np.int16), kind="stable")]
    else:  # pathological ranges: comparison sorts, same key order
        o1 = np.argsort(k1, kind="stable")
        order = o1[np.argsort(e_s[o1], kind="stable")]
    e_o = e_s[order]
    g_o = g_s[order]
    starts, seg_id, idx = _segments(e_o)
    shifted = g_o - idx
    if len(starts) * (int(idx.max()) + 1) <= _RECT_LIMIT:
        cm = _rectangle_cummax(seg_id, idx, shifted, _NEG, shifted.dtype)
    else:
        cm = _loop_cummax(starts, shifted)
    d = np.empty_like(g_s)
    d[order] = cm + idx
    return d


def _level_order(lvl_vis: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stable level sort of the visits plus per-level slice bounds.

    The stable sort keeps visits in generation order inside each level
    (each packet appears at most once per level, so this is also
    packet order — the slotted tie-break relies on it)."""
    max_lvl = int(lvl_vis.max())
    if lvl_vis.dtype == np.int16:
        # int16 stable sort is radix — much faster than a comparison
        # sort on these few-distinct-value keys.
        order = np.argsort(lvl_vis, kind="stable")
    elif max_lvl < _I16_MAX:
        order = np.argsort(lvl_vis.astype(np.int16), kind="stable")
    else:
        order = np.argsort(lvl_vis, kind="stable")
    bounds = np.searchsorted(lvl_vis[order], np.arange(max_lvl + 2))
    return order, bounds


def _level_layout(
    cache: Any,
    num_edges: int,
    visit_edge: np.ndarray,
    cum0: np.ndarray,
    nvis: int,
) -> tuple[np.ndarray, ...]:
    """Static per-run structure of the level sweep, in *level layout*
    (visits stably sorted by level): the solve loop then reads its
    static inputs as contiguous slices and only the dynamic
    eligibility array needs scattered writes.

    Returns ``(order, bounds, inv, e_lv, new_lv, hn_lv, nxt_lv)`` —
    the level sort and its inverse, per-visit edge ids, first-hop and
    has-next flags in level layout, and each visit's next hop's
    level-layout position (valid where ``hn_lv``)."""
    is_first = np.zeros(nvis, dtype=bool)
    is_first[cum0[:-1]] = True
    lvl, lvl_vis = _levels_for(cache, num_edges, visit_edge, is_first)
    order, bounds = _level_order(lvl_vis)
    inv = np.empty(nvis, dtype=np.int64)
    inv[order] = np.arange(nvis, dtype=np.int64)
    e_lv = visit_edge[order]
    # Scatter the boundary flags straight into level layout (one small
    # scatter per flag instead of a full-size gather).
    new_lv = np.zeros(nvis, dtype=bool)
    new_lv[inv[cum0[:-1]]] = True
    hn_lv = np.ones(nvis, dtype=bool)
    hn_lv[inv[cum0[1:] - 1]] = False  # last hop has no next edge
    nxt_lv = inv[np.minimum(order + 1, nvis - 1)]
    return order, bounds, inv, e_lv, new_lv, hn_lv, nxt_lv


def run_fifo(
    sim: Any,
    warmup: float,
    horizon: float,
    *,
    track_utilization: bool = False,
    collect_delays: bool = False,
    track_number_distribution: bool = False,
    track_maxima: bool = False,
    delay_batches: int = 32,
) -> SimResult:
    """Vectorized uniform-deterministic FIFO kernel (max-plus solve)."""
    if track_utilization:
        _reject("track_utilization", "fifo")
    if track_number_distribution:
        _reject("track_number_distribution", "fifo")
    if track_maxima:
        _reject("track_maxima", "fifo")
    rng = make_rng(sim.seed, engine="fifo", backend="numpy")
    t_end = warmup + horizon
    gap_scale = 1.0 / sim.total_rate
    num_nodes = sim.topology.num_nodes
    num_edges = sim.topology.num_edges
    c = sim._service_times[0]
    sat = sim._sat
    sat_arr = None if sat is None else np.asarray(sat, dtype=bool)

    # ---- draws (see the module docstring's draw-order spec) ----
    blocks = []
    offset = 0.0
    while offset < t_end:
        blk = offset + np.cumsum(rng.exponential(size=_BLOCK)) * gap_scale
        offset = float(blk[-1])
        blocks.append(blk)
    r_t = np.concatenate(blocks)
    r_t = r_t[r_t < t_end]  # arrivals at/after the horizon are discarded
    m = r_t.size
    srcs, dsts = _draw_ids(sim, m, num_nodes, rng)

    measured = r_t >= warmup
    generated = int(measured.sum())
    zero = srcs == dsts
    zero_hop = int((measured & zero).sum())

    nz = ~zero
    a_t = r_t[nz]  # routed packets' creation times
    mr = measured[nz]
    offs, lens, visit_edge = _draw_paths(sim, srcs[nz], dsts[nz], rng)

    # ---- solve ----
    if visit_edge.size:
        nvis = visit_edge.size
        cum0 = np.concatenate(([0], np.cumsum(lens)))
        order, bounds, inv, e_lv, new_lv, hn_lv, nxt_lv = _level_layout(
            sim.path_cache, num_edges, visit_edge, cum0, nvis
        )
        x_lv = np.empty(nvis)
        x_lv[inv[cum0[:-1]]] = a_t
        dep_lv = np.empty(nvis)
        for lev in range(bounds.size - 1):
            lo, hi = int(bounds[lev]), int(bounds[lev + 1])
            if lo == hi:
                continue
            d_sel = _fifo_departures(e_lv[lo:hi], x_lv[lo:hi], c, num_edges)
            dep_lv[lo:hi] = d_sel
            hn = hn_lv[lo:hi]
            x_lv[nxt_lv[lo:hi][hn]] = d_sel[hn]
        dep = np.empty(nvis)
        dep[order] = dep_lv
        d_final = dep[cum0[1:] - 1]
    else:
        cum0 = np.zeros(1, dtype=np.int64)
        dep = np.empty(0)
        d_final = np.empty(0)

    # ---- exact window-overlap statistics ----
    int_n = float(
        np.maximum(
            np.minimum(d_final, t_end) - np.maximum(a_t, warmup), 0.0
        ).sum()
    )
    a_vis = np.repeat(a_t, lens) if visit_edge.size else np.empty(0)
    overlap = np.minimum(dep, t_end)
    overlap -= np.maximum(a_vis, warmup)
    np.maximum(overlap, 0.0, out=overlap)
    int_r = float(overlap.sum())
    int_rs = (
        float(overlap[sat_arr[visit_edge]].sum())
        if sat_arr is not None and visit_edge.size
        else 0.0
    )
    in_flight = int((d_final >= t_end).sum())

    delay_acc = TimeBatchAccumulator(warmup, t_end, delay_batches)
    routed_delay = d_final - a_t
    delay_acc.add_batch(a_t[mr], routed_delay[mr])
    zero_ts = r_t[measured & zero]
    delay_acc.add_batch(zero_ts, np.zeros(zero_ts.size))

    delays = None
    if collect_delays:
        comp_t = np.concatenate((zero_ts, d_final[mr]))
        vals = np.concatenate((np.zeros(zero_ts.size), routed_delay[mr]))
        delays = vals[np.argsort(comp_t, kind="stable")]

    mean_number = int_n / horizon
    summary = delay_acc.summary()
    return SimResult(
        warmup=warmup,
        horizon=horizon,
        seed=sim.seed,
        generated=generated,
        completed=generated,  # every measured packet completes after drain
        zero_hop=zero_hop,
        in_flight_at_end=in_flight,
        mean_number=mean_number,
        mean_remaining=int_r / horizon,
        mean_remaining_saturated=(
            int_rs / horizon if sat_arr is not None else float("nan")
        ),
        mean_delay=summary.mean,
        delay_half_width=summary.half_width,
        mean_delay_littles=mean_number / sim.total_rate,
        total_rate=sim.total_rate,
        delays=delays,
    )


def run_slotted(
    sim: Any,
    warmup_slots: int,
    horizon_slots: int,
    *,
    delay_batches: int = 32,
    track_maxima: bool = False,
    collect_delays: bool = False,
    batch_rng: bool = True,
) -> SimResult:
    """Vectorized slotted kernel (integer max-plus over slots)."""
    if track_maxima:
        _reject("track_maxima", "slotted")
    if not batch_rng:
        raise ValueError(
            "backend='numpy' supports only the batched draw order "
            "(batch_rng=True); the legacy compat stream is per-packet "
            "by definition — use backend='python'"
        )
    rng = make_rng(sim.seed, engine="slotted", backend="numpy")
    tau = sim.tau
    warmup = warmup_slots * tau
    horizon = horizon_slots * tau
    t_end_slot = warmup_slots + horizon_slots
    batch_mean = sim.total_rate * tau
    num_nodes = sim.topology.num_nodes
    num_edges = sim.topology.num_edges
    sat = sim._sat
    sat_arr = None if sat is None else np.asarray(sat, dtype=bool)

    # ---- draws: Poisson count blocks, then one batch of everything ----
    counts = np.empty(t_end_slot, dtype=np.int64)
    drawn = 0
    while drawn < t_end_slot:
        size = min(_BLOCK, t_end_slot - drawn)
        counts[drawn : drawn + size] = rng.poisson(batch_mean, size=size)
        drawn += size
    slots = np.repeat(np.arange(t_end_slot, dtype=np.int32), counts)
    m = slots.size
    srcs, dsts = _draw_ids(sim, m, num_nodes, rng)

    measured = slots >= warmup_slots
    generated = int(measured.sum())
    zero = srcs == dsts
    zero_hop = int((measured & zero).sum())

    nz = ~zero
    a_s = slots[nz]  # routed packets' generation slots
    mr = measured[nz]
    offs, lens, visit_edge = _draw_paths(sim, srcs[nz], dsts[nz], rng)

    # ---- solve ----
    if visit_edge.size:
        nvis = visit_edge.size
        cum0 = np.concatenate(([0], np.cumsum(lens)))
        order, bounds, inv, e_lv, new_lv, hn_lv, nxt_lv = _level_layout(
            sim.path_cache, num_edges, visit_edge, cum0, nvis
        )
        g_lv = np.empty(nvis, dtype=np.int32)
        g_lv[inv[cum0[:-1]]] = a_s
        dep_lv = np.empty(nvis, dtype=np.int32)
        for lev in range(bounds.size - 1):
            lo, hi = int(bounds[lev]), int(bounds[lev + 1])
            if lo == hi:
                continue
            d_sel = _slot_departures(
                e_lv[lo:hi], g_lv[lo:hi], new_lv[lo:hi], num_edges
            )
            dep_lv[lo:hi] = d_sel
            hn = hn_lv[lo:hi]
            # delivered at the end of slot d -> eligible in slot d + 1
            g_lv[nxt_lv[lo:hi][hn]] = d_sel[hn] + 1
        dep = np.empty(nvis, dtype=np.int32)
        dep[order] = dep_lv
        d_final = dep[cum0[1:] - 1]
    else:
        cum0 = np.zeros(1, dtype=np.int64)
        dep = np.empty(0, dtype=np.int32)
        d_final = np.empty(0, dtype=np.int32)

    # ---- inclusive-slot window statistics ----
    # A packet occupies the system during slots [a, d_final] (it leaves
    # at the end of slot d_final); hop h's remaining-work unit exists
    # during slots [a, d_h]. The reference loop integrates state over
    # measuring slots [W, L], tau per slot.
    last = t_end_slot - 1
    int_n = tau * float(
        np.maximum(
            np.minimum(d_final, last) - np.maximum(a_s, warmup_slots) + 1, 0
        ).sum()
    )
    a_vis = (
        np.repeat(a_s, lens)
        if visit_edge.size
        else np.empty(0, dtype=np.int64)
    )
    overlap = np.minimum(dep, last)
    overlap -= np.maximum(a_vis, warmup_slots)
    overlap += 1
    np.maximum(overlap, 0, out=overlap)
    int_r = tau * float(overlap.sum())
    int_rs = (
        tau * float(overlap[sat_arr[visit_edge]].sum())
        if sat_arr is not None and visit_edge.size
        else 0.0
    )
    in_flight = int((d_final >= last).sum())

    delay_acc = TimeBatchAccumulator(warmup, warmup + horizon, delay_batches)
    birth_t = a_s * tau
    routed_delay = (d_final + 1 - a_s) * tau  # arrival is end of slot d
    delay_acc.add_batch(birth_t[mr], routed_delay[mr])
    zero_ts = slots[measured & zero] * tau
    delay_acc.add_batch(zero_ts, np.zeros(zero_ts.size))

    delays = None
    if collect_delays:
        comp_t = np.concatenate((zero_ts, (d_final[mr] + 1) * tau))
        vals = np.concatenate((np.zeros(zero_ts.size), routed_delay[mr]))
        delays = vals[np.argsort(comp_t, kind="stable")]

    mean_number = int_n / horizon
    summary = delay_acc.summary()
    return SimResult(
        warmup=warmup,
        horizon=horizon,
        seed=sim.seed,
        generated=generated,
        completed=generated,  # every measured packet completes after drain
        zero_hop=zero_hop,
        in_flight_at_end=in_flight,
        mean_number=mean_number,
        mean_remaining=int_r / horizon,
        mean_remaining_saturated=(
            int_rs / horizon if sat_arr is not None else float("nan")
        ),
        mean_delay=summary.mean,
        delay_half_width=summary.half_width,
        mean_delay_littles=mean_number / sim.total_rate,
        total_rate=sim.total_rate,
        delays=delays,
    )


def _draw_ids(
    sim: Any, m: int, num_nodes: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One blocked source/destination draw for the whole run."""
    if sim._fast_ids:
        ids = rng.integers(0, num_nodes, size=2 * m)
        return ids[0::2], ids[1::2]
    source_arr = np.asarray(sim.source_nodes, dtype=np.int64)
    if sim._uniform_sources:
        srcs = source_arr[rng.integers(0, source_arr.size, size=m)]
    else:
        # side="right": a draw landing exactly on a CDF boundary must
        # not select a zero-rate source (the reference loops' contract).
        srcs = source_arr[
            np.searchsorted(sim._source_cdf, rng.random(m), side="right")
        ]
    law = sim.destinations
    sample_batch = getattr(law, "sample_batch", None)
    if sample_batch is not None:
        dsts = np.asarray(sample_batch(srcs, rng), dtype=np.int64)
    else:
        dsts = np.asarray(
            [law.sample(int(s), rng) for s in srcs.tolist()],
            dtype=np.int64,
        )
    return srcs, dsts


def _draw_paths(
    sim: Any,
    srcs: np.ndarray,
    dsts: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One batch path lookup; returns ``(offs, lens, visit_edge)`` with
    the arena snapshot taken *after* the lookup grew the arena."""
    cache = sim.path_cache
    if cache.consumes_rng:
        offs, lens = cache.sample_offlen_batch(srcs, dsts, rng)
    else:
        promote = getattr(cache, "promote_dense", None)
        if promote is not None:
            promote()  # dict-only caches would loop a probe per pair
        offs, lens = cache.offlen_batch(srcs, dsts)
    offs = np.asarray(offs, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    return offs, lens, cache.arena.gather(offs, lens)
