"""Seeded RNG construction for every engine — with a sanitizer hook.

All engine/kernel RNGs are built through :func:`make_rng` instead of
calling ``np.random.default_rng`` directly. In normal operation that is
exactly what happens (same object, same draw stream, zero overhead on
the hot path). The indirection exists for the determinism sanitizer
(:mod:`repro.analysis.rngsan`): when a tracer is installed — explicitly
via :func:`install_factory` / the ``rngsan.trace(...)`` context manager,
or process-wide via the ``REPRO_RNGSAN=1`` environment variable — every
engine RNG is transparently wrapped so the full draw stream (kind, size,
callsite) is recorded and divergences between two runs can be localized
to the first differing draw.

The layering matters: ``sim`` never imports ``repro.analysis`` at module
scope. The sanitizer reaches *in* by installing a factory; the only
``analysis`` import here is lazy and gated on the opt-in environment
variable.
"""

from __future__ import annotations

from os import environ
from typing import Any, Callable, Optional

import numpy as np

#: Installed by rngsan (or a test double): ``factory(seed, **meta)`` must
#: return a Generator-compatible object. ``None`` = plain numpy RNGs.
_FACTORY: Optional[Callable[..., Any]] = None


def install_factory(factory: Callable[..., Any]) -> None:
    """Route all subsequent :func:`make_rng` calls through ``factory``."""
    global _FACTORY
    _FACTORY = factory


def uninstall_factory() -> None:
    """Restore plain ``np.random.default_rng`` construction."""
    global _FACTORY
    _FACTORY = None


def make_rng(seed: Any, **meta: Any) -> Any:
    """A seeded ``np.random.Generator`` (possibly sanitizer-wrapped).

    ``meta`` is free-form context recorded into the trace when a tracer
    is active (engine name, backend, cell label); it is ignored on the
    plain path.
    """
    if _FACTORY is None and environ.get("REPRO_RNGSAN"):
        from repro.analysis.rngsan import env_tracer

        install_factory(env_tracer().make)
    if _FACTORY is not None:
        return _FACTORY(seed, **meta)
    return np.random.default_rng(seed)
