"""Finite-buffer FIFO loss engine: the standard model with bounded queues.

The paper's bounds all assume infinite buffers; real routers do not.
This engine reproduces :class:`repro.sim.fifo_network.NetworkSimulation`
— same service laws, same hot-path architecture — but gives every node a
finite amount of waiting room and *drops* any packet that arrives to a
full buffer, so loss rates and blocking can be measured against the
infinite-buffer baseline (the loss-vs-buffer-size experiment,
:mod:`repro.experiments.finite_buffer`, sweeps exactly that).

Semantics
---------
``buffer_size`` is the waiting room per outgoing edge, *excluding* the
packet in service: a scalar applies to every node, a per-node sequence
gives node ``v``'s value to every edge leaving ``v``, and ``None`` means
infinite buffers. ``buffer_size=0`` is the pure-loss system — a packet
that finds its next edge busy is dropped on the spot. A drop removes the
packet immediately (mid-route drops do not retry, re-route or occupy the
buffer), mirroring tail-drop routers. Drop accounting follows the same
measurement convention as every other statistic: only *measured* packets
(born inside the window) count, so a buffer that is full at the
warmup boundary contributes no phantom drops, and after the drain
``completed + dropped == generated`` exactly. ``mean_delay`` averages
over surviving (completed) packets — with tiny buffers it can *drop*
as K shrinks, because the packets that would have waited longest are
exactly the ones lost.

Hot path and bit-identity
-------------------------
The engine shares the PR-2/3 architecture via its base class: the
:class:`~repro.sim.enginecommon.EngineCommon` constructor policy, the
shared path-cache arena with ``(arena_offset, length)`` packet records,
blocked RNG draws, the monotone-merge event loop for uniform
deterministic service (drops never schedule events, so departure pushes
stay nondecreasing) and the pluggable event queue
(:mod:`repro.sim.eventqueue`) for stochastic service. With
``buffer_size=None`` the run is delegated verbatim to the FIFO engine,
so it is *bit-identical* to ``engine="fifo"`` — pinned by the
``finite_none_*`` golden cells — and with buffers too large to ever
fill, the finite loop performs the exact same draws, event ordering and
float accumulation as the FIFO loops (the admission test consumes no
randomness), which the regression tests pin as well.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.kernels import FINITE_KERNEL, NUMPY_BACKEND, get_kernel
from repro.sim.result import SimResult
from repro.util.validation import check_positive


def resolve_buffer_size(
    buffer_size: int | Sequence[int] | None, num_nodes: int
) -> list[int] | None:
    """Validate ``buffer_size`` into a per-node waiting-room list.

    ``None`` means infinite buffers; a scalar int broadcasts over every
    node; a sequence must carry one non-negative int per node.
    """
    if buffer_size is None:
        return None
    if isinstance(buffer_size, bool):
        raise ValueError(f"buffer_size must be an int, got {buffer_size!r}")
    if np.isscalar(buffer_size):
        k = buffer_size
        if not float(k).is_integer() or int(k) < 0:
            raise ValueError(
                f"buffer_size must be a non-negative int, got {buffer_size!r}"
            )
        return [int(k)] * num_nodes
    sizes = list(buffer_size)
    if len(sizes) != num_nodes:
        raise ValueError(
            f"per-node buffer_size must have {num_nodes} entries, "
            f"got {len(sizes)}"
        )
    out: list[int] = []
    for v in sizes:
        if isinstance(v, bool) or not float(v).is_integer() or int(v) < 0:
            raise ValueError(
                f"per-node buffer_size entries must be non-negative ints, "
                f"got {v!r}"
            )
        out.append(int(v))
    return out


class FiniteBufferNetworkSimulation(NetworkSimulation):
    """FIFO network with per-node finite buffers and tail-drop loss.

    Parameters mirror :class:`repro.sim.NetworkSimulation`, plus:

    buffer_size:
        Waiting room per outgoing edge, excluding the packet in service.
        A scalar int broadcasts over all nodes; a per-node sequence gives
        node ``v``'s room to each of its outgoing edges; ``None``
        (the default) reproduces the infinite-buffer FIFO engine
        bit-for-bit.
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        buffer_size: int | Sequence[int] | None = None,
        **kwargs,
    ) -> None:
        super().__init__(router, destinations, node_rate, **kwargs)
        topology = router.topology
        per_node = resolve_buffer_size(buffer_size, topology.num_nodes)
        self.buffer_size = buffer_size
        #: Per-edge waiting-room cap (node caps fanned onto out-edges),
        #: or ``None`` for infinite buffers.
        self._edge_caps: list[int] | None = None
        self._edge_tail: list[int] = topology.edge_source.tolist()
        if per_node is not None:
            self._edge_caps = [per_node[u] for u in self._edge_tail]
        if self._edge_caps is not None and self.backend == NUMPY_BACKEND:
            # Tail-drop admission couples every packet's trajectory to
            # instantaneous queue lengths, which breaks the max-plus
            # decomposition the vectorized kernel relies on.
            raise ValueError(
                "backend='numpy' does not support finite buffers "
                "(tail-drop admission is state-dependent); use "
                "backend='python' or buffer_size=None"
            )

    # ------------------------------------------------------------------
    def run(
        self,
        warmup: float,
        horizon: float,
        *,
        track_utilization: bool = False,
        collect_delays: bool = False,
        track_number_distribution: bool = False,
        track_maxima: bool = False,
        delay_batches: int = 32,
    ) -> SimResult:
        """Simulate ``warmup + horizon`` time units and drain.

        Options are as in :meth:`NetworkSimulation.run`. With
        ``buffer_size=None`` the run delegates to the FIFO engine (the
        result then has ``node_drops=None``); otherwise the finite
        kernel runs and the result carries ``dropped`` / ``node_drops``.
        """
        if self._edge_caps is None:
            return super().run(
                warmup,
                horizon,
                track_utilization=track_utilization,
                collect_delays=collect_delays,
                track_number_distribution=track_number_distribution,
                track_maxima=track_maxima,
                delay_batches=delay_batches,
            )
        check_positive(horizon, "horizon")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        return get_kernel(FINITE_KERNEL, self.backend)(
            self,
            warmup,
            horizon,
            track_utilization=track_utilization,
            collect_delays=collect_delays,
            track_number_distribution=track_number_distribution,
            track_maxima=track_maxima,
            delay_batches=delay_batches,
        )
