"""Finite-buffer FIFO loss engine: the standard model with bounded queues.

The paper's bounds all assume infinite buffers; real routers do not.
This engine reproduces :class:`repro.sim.fifo_network.NetworkSimulation`
— same service laws, same hot-path architecture — but gives every node a
finite amount of waiting room and *drops* any packet that arrives to a
full buffer, so loss rates and blocking can be measured against the
infinite-buffer baseline (the loss-vs-buffer-size experiment,
:mod:`repro.experiments.finite_buffer`, sweeps exactly that).

Semantics
---------
``buffer_size`` is the waiting room per outgoing edge, *excluding* the
packet in service: a scalar applies to every node, a per-node sequence
gives node ``v``'s value to every edge leaving ``v``, and ``None`` means
infinite buffers. ``buffer_size=0`` is the pure-loss system — a packet
that finds its next edge busy is dropped on the spot. A drop removes the
packet immediately (mid-route drops do not retry, re-route or occupy the
buffer), mirroring tail-drop routers. Drop accounting follows the same
measurement convention as every other statistic: only *measured* packets
(born inside the window) count, so a buffer that is full at the
warmup boundary contributes no phantom drops, and after the drain
``completed + dropped == generated`` exactly. ``mean_delay`` averages
over surviving (completed) packets — with tiny buffers it can *drop*
as K shrinks, because the packets that would have waited longest are
exactly the ones lost.

Hot path and bit-identity
-------------------------
The engine shares the PR-2/3 architecture via its base class: the
:class:`~repro.sim.enginecommon.EngineCommon` constructor policy, the
shared path-cache arena with ``(arena_offset, length)`` packet records,
blocked RNG draws, the monotone-merge event loop for uniform
deterministic service (drops never schedule events, so departure pushes
stay nondecreasing) and the pluggable event queue
(:mod:`repro.sim.eventqueue`) for stochastic service. With
``buffer_size=None`` the run is delegated verbatim to the FIFO engine,
so it is *bit-identical* to ``engine="fifo"`` — pinned by the
``finite_none_*`` golden cells — and with buffers too large to ever
fill, the finite loop performs the exact same draws, event ordering and
float accumulation as the FIFO loops (the admission test consumes no
randomness), which the regression tests pin as well.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.fifo_network import EXPONENTIAL, NetworkSimulation
from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.util.validation import check_positive

_BLOCK = 8192


def resolve_buffer_size(
    buffer_size: int | Sequence[int] | None, num_nodes: int
) -> list[int] | None:
    """Validate ``buffer_size`` into a per-node waiting-room list.

    ``None`` means infinite buffers; a scalar int broadcasts over every
    node; a sequence must carry one non-negative int per node.
    """
    if buffer_size is None:
        return None
    if isinstance(buffer_size, bool):
        raise ValueError(f"buffer_size must be an int, got {buffer_size!r}")
    if np.isscalar(buffer_size):
        k = buffer_size
        if not float(k).is_integer() or int(k) < 0:
            raise ValueError(
                f"buffer_size must be a non-negative int, got {buffer_size!r}"
            )
        return [int(k)] * num_nodes
    sizes = list(buffer_size)
    if len(sizes) != num_nodes:
        raise ValueError(
            f"per-node buffer_size must have {num_nodes} entries, "
            f"got {len(sizes)}"
        )
    out: list[int] = []
    for v in sizes:
        if isinstance(v, bool) or not float(v).is_integer() or int(v) < 0:
            raise ValueError(
                f"per-node buffer_size entries must be non-negative ints, "
                f"got {v!r}"
            )
        out.append(int(v))
    return out


class FiniteBufferNetworkSimulation(NetworkSimulation):
    """FIFO network with per-node finite buffers and tail-drop loss.

    Parameters mirror :class:`repro.sim.NetworkSimulation`, plus:

    buffer_size:
        Waiting room per outgoing edge, excluding the packet in service.
        A scalar int broadcasts over all nodes; a per-node sequence gives
        node ``v``'s room to each of its outgoing edges; ``None``
        (the default) reproduces the infinite-buffer FIFO engine
        bit-for-bit.
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        buffer_size: int | Sequence[int] | None = None,
        **kwargs,
    ) -> None:
        super().__init__(router, destinations, node_rate, **kwargs)
        topology = router.topology
        per_node = resolve_buffer_size(buffer_size, topology.num_nodes)
        self.buffer_size = buffer_size
        #: Per-edge waiting-room cap (node caps fanned onto out-edges),
        #: or ``None`` for infinite buffers.
        self._edge_caps: list[int] | None = None
        self._edge_tail: list[int] = topology.edge_source.tolist()
        if per_node is not None:
            self._edge_caps = [per_node[u] for u in self._edge_tail]

    # ------------------------------------------------------------------
    def run(
        self,
        warmup: float,
        horizon: float,
        *,
        track_utilization: bool = False,
        collect_delays: bool = False,
        track_number_distribution: bool = False,
        track_maxima: bool = False,
        delay_batches: int = 32,
    ) -> SimResult:
        """Simulate ``warmup + horizon`` time units and drain.

        Options are as in :meth:`NetworkSimulation.run`. With
        ``buffer_size=None`` the run delegates to the FIFO engine (the
        result then has ``node_drops=None``); otherwise the finite loop
        below runs and the result carries ``dropped`` / ``node_drops``.
        """
        if self._edge_caps is None:
            return super().run(
                warmup,
                horizon,
                track_utilization=track_utilization,
                collect_delays=collect_delays,
                track_number_distribution=track_number_distribution,
                track_maxima=track_maxima,
                delay_batches=delay_batches,
            )
        check_positive(horizon, "horizon")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        rng = np.random.default_rng(self.seed)
        t_end = warmup + horizon

        destinations = self.destinations
        exponential = self.service == EXPONENTIAL
        st = self._service_times
        sat = self._sat
        cap = self._edge_caps
        tail = self._edge_tail
        num_nodes = self.topology.num_nodes
        num_edges = self.topology.num_edges
        queues: list[deque] = [deque() for _ in range(num_edges)]
        busy = bytearray(num_edges)

        # Path cache bindings (see NetworkSimulation.run).
        cache = self.path_cache
        arena = cache.arena.edges  # extended in place; safe to bind once
        if cache.consumes_rng:
            det_get = None
            det_build = None
            sample_offlen = cache.sample_offlen
        else:
            det_get = cache.table.get
            det_build = cache.ensure
            sample_offlen = None

        seq = 0

        # Block RNG: exponential(1) variates and uniform source/dest ids.
        exp_block = rng.exponential(size=_BLOCK)
        exp_i = 0
        sources = self.source_nodes
        nsrc = len(sources)
        uniform_fast = self._fast_ids
        uniform_sources = self._uniform_sources
        source_cdf = None if uniform_sources else self._source_cdf
        if uniform_fast:
            id_block = rng.integers(0, num_nodes, size=2 * _BLOCK).tolist()
            id_i = 0
        else:
            id_block = None
            id_i = 0
        gap_scale = 1.0 / self.total_rate

        # Statistics (drop accounting on top of the FIFO set).
        in_system = 0
        remaining = 0
        remaining_sat = 0
        int_n = 0.0
        int_r = 0.0
        int_rs = 0.0
        last_t = 0.0
        generated = completed = zero_hop = 0
        dropped = 0
        node_drops = [0] * num_nodes
        delay_acc = TimeBatchAccumulator(warmup, t_end, delay_batches)
        delays: list[float] | None = [] if collect_delays else None
        util = np.zeros(num_edges) if track_utilization else None
        ndist: dict[int, float] | None = {} if track_number_distribution else None
        max_delay = 0.0
        max_queue = 0
        searchsorted = np.searchsorted
        dest_sample = destinations.sample

        def service_sample(e: int) -> float:
            nonlocal exp_i, exp_block
            if not exponential:
                return st[e]
            if exp_i >= _BLOCK:
                exp_block = rng.exponential(size=_BLOCK)
                exp_i = 0
            v = exp_block[exp_i] * st[e]
            exp_i += 1
            return v

        def start_service_heap(e: int, t: float, pkt: list) -> None:
            nonlocal seq
            s = service_sample(e)
            pushe((t + s, seq, e, pkt))
            seq += 1
            if util is not None:
                lo = t if t > warmup else warmup
                hi = t + s if t + s < t_end else t_end
                if hi > lo:
                    util[e] += hi - lo

        first_gap = exp_block[exp_i] * gap_scale
        exp_i += 1

        draining = False
        in_flight_at_horizon = 0
        maxima_seeded = not track_maxima or warmup == 0.0
        BLK = _BLOCK
        TWO_BLOCK = 2 * _BLOCK

        if self._uniform_service:
            # ---------------- monotone-merge event loop ----------------
            # Drops never schedule events, so departure pushes stay
            # nondecreasing and the FIFO merge structure carries over
            # unchanged (same (time, seq) pop order as the heap would
            # give, same arithmetic when nothing drops).
            service_c = st[0]
            dep_q: deque = deque()
            dep_pop = dep_q.popleft
            dep_append = dep_q.append
            arr_t = first_gap
            arr_seq = seq
            seq += 1
            have_arrival = True
            while True:
                if dep_q:
                    head = dep_q[0]
                    if have_arrival:
                        ht = head[0]
                        if arr_t < ht or (arr_t == ht and arr_seq < head[1]):
                            is_arrival = True
                            t = arr_t
                        else:
                            is_arrival = False
                            t, _s, e, pkt = dep_pop()
                    else:
                        is_arrival = False
                        t, _s, e, pkt = dep_pop()
                elif have_arrival:
                    is_arrival = True
                    t = arr_t
                else:
                    break
                if not maxima_seeded and t >= warmup:
                    maxima_seeded = True
                    for q in queues:
                        if len(q) > max_queue:
                            max_queue = len(q)
                if t >= t_end and not draining:
                    draining = True
                    in_flight_at_horizon = in_system
                    lo = last_t if last_t > warmup else warmup
                    if t_end > lo:
                        dt = t_end - lo
                        int_n += in_system * dt
                        int_r += remaining * dt
                        int_rs += remaining_sat * dt
                        if ndist is not None:
                            ndist[in_system] = ndist.get(in_system, 0.0) + dt
                    last_t = t_end
                if not draining and t > warmup:
                    lo = last_t if last_t > warmup else warmup
                    dt = t - lo
                    if dt > 0.0:
                        int_n += in_system * dt
                        int_r += remaining * dt
                        int_rs += remaining_sat * dt
                        if ndist is not None:
                            ndist[in_system] = ndist.get(in_system, 0.0) + dt
                    last_t = t
                elif not draining:
                    last_t = t

                if is_arrival:
                    # ----- external arrival -----
                    if draining:
                        have_arrival = False  # no arrivals past the horizon
                        continue
                    if uniform_fast:
                        if id_i >= TWO_BLOCK:
                            id_block = rng.integers(
                                0, num_nodes, size=TWO_BLOCK
                            ).tolist()
                            id_i = 0
                        src = id_block[id_i]
                        dst = id_block[id_i + 1]
                        id_i += 2
                    else:
                        if uniform_sources:
                            src = sources[int(rng.integers(nsrc))]
                        else:
                            src = sources[
                                int(
                                    searchsorted(
                                        source_cdf, rng.random(), side="right"
                                    )
                                )
                            ]
                        dst = dest_sample(src, rng)
                    measured = t >= warmup
                    if measured:
                        generated += 1
                    if src == dst:
                        if measured:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                            if delays is not None:
                                delays.append(0.0)
                    else:
                        if det_get is not None:
                            ol = det_get(src * num_nodes + dst)
                            if ol is None:
                                ol = det_build(src, dst)
                            off, ln = ol
                        else:
                            off, ln = sample_offlen(src, dst, rng)
                        f = arena[off]
                        if busy[f] and len(queues[f]) >= cap[f]:
                            # Entry buffer full: the packet never enters.
                            if measured:
                                dropped += 1
                                node_drops[tail[f]] += 1
                        else:
                            in_system += 1
                            remaining += ln
                            if sat is not None:
                                nsat = 0
                                for k in range(off, off + ln):
                                    if sat[arena[k]]:
                                        nsat += 1
                                remaining_sat += nsat
                            new_pkt = [t, off, ln, 0, measured]
                            if busy[f]:
                                q = queues[f]
                                q.append(new_pkt)
                                if (
                                    track_maxima
                                    and measured
                                    and not draining
                                    and len(q) > max_queue
                                ):
                                    max_queue = len(q)
                            else:
                                busy[f] = 1
                                dep_append((t + service_c, seq, f, new_pkt))
                                seq += 1
                                if util is not None:
                                    lo = t if t > warmup else warmup
                                    hi = t + service_c
                                    if hi > t_end:
                                        hi = t_end
                                    if hi > lo:
                                        util[f] += hi - lo
                    # Next arrival.
                    if exp_i >= BLK:
                        exp_block = rng.exponential(size=BLK)
                        exp_i = 0
                    arr_t = t + exp_block[exp_i] * gap_scale
                    exp_i += 1
                    arr_seq = seq
                    seq += 1
                else:
                    # ----- departure: pkt finished service at edge e -----
                    remaining -= 1
                    if sat is not None and sat[e]:
                        remaining_sat -= 1
                    hop = pkt[3] + 1
                    if hop == pkt[2]:
                        in_system -= 1
                        if pkt[4]:
                            completed += 1
                            d = t - pkt[0]
                            delay_acc.add(pkt[0], d)
                            if track_maxima and d > max_delay:
                                max_delay = d
                            if delays is not None:
                                delays.append(d)
                    else:
                        f = arena[pkt[1] + hop]
                        if busy[f] and len(queues[f]) >= cap[f]:
                            # Mid-route drop: the packet leaves with its
                            # unserved hops still on the books.
                            in_system -= 1
                            remaining -= pkt[2] - hop
                            if sat is not None:
                                nsat = 0
                                for k in range(pkt[1] + hop, pkt[1] + pkt[2]):
                                    if sat[arena[k]]:
                                        nsat += 1
                                remaining_sat -= nsat
                            if pkt[4]:
                                dropped += 1
                                node_drops[tail[f]] += 1
                        else:
                            pkt[3] = hop
                            if busy[f]:
                                qf = queues[f]
                                qf.append(pkt)
                                if (
                                    track_maxima
                                    and not draining
                                    and t >= warmup
                                    and len(qf) > max_queue
                                ):
                                    max_queue = len(qf)
                            else:
                                busy[f] = 1
                                dep_append((t + service_c, seq, f, pkt))
                                seq += 1
                                if util is not None:
                                    lo = t if t > warmup else warmup
                                    hi = t + service_c
                                    if hi > t_end:
                                        hi = t_end
                                    if hi > lo:
                                        util[f] += hi - lo
                    q = queues[e]
                    if q:
                        nxt = q.popleft()
                        dep_append((t + service_c, seq, e, nxt))
                        seq += 1
                        if util is not None:
                            lo = t if t > warmup else warmup
                            hi = t + service_c
                            if hi > t_end:
                                hi = t_end
                            if hi > lo:
                                util[e] += hi - lo
                    else:
                        busy[e] = 0
        else:
            # ------------------ event-queue loop ------------------
            # Exponential or per-edge deterministic service (see
            # NetworkSimulation.run): the pluggable event queue orders
            # departures; drops simply skip the enqueue.
            from repro.sim.eventqueue import make_event_queue

            evq = make_event_queue(self.event_queue, width=gap_scale)
            pushe = evq.push
            pope = evq.pop
            pushe((first_gap, seq, -1, None))
            seq += 1
            fast_service = not exponential and util is None
            while evq:
                t, _s, e, pkt = pope()
                if not maxima_seeded and t >= warmup:
                    maxima_seeded = True
                    for q in queues:
                        if len(q) > max_queue:
                            max_queue = len(q)
                if t >= t_end and not draining:
                    draining = True
                    in_flight_at_horizon = in_system
                    lo = last_t if last_t > warmup else warmup
                    if t_end > lo:
                        dt = t_end - lo
                        int_n += in_system * dt
                        int_r += remaining * dt
                        int_rs += remaining_sat * dt
                        if ndist is not None:
                            ndist[in_system] = ndist.get(in_system, 0.0) + dt
                    last_t = t_end
                if not draining and t > warmup:
                    lo = last_t if last_t > warmup else warmup
                    dt = t - lo
                    if dt > 0.0:
                        int_n += in_system * dt
                        int_r += remaining * dt
                        int_rs += remaining_sat * dt
                        if ndist is not None:
                            ndist[in_system] = ndist.get(in_system, 0.0) + dt
                    last_t = t
                elif not draining:
                    last_t = t

                if e < 0:
                    # ----- external arrival -----
                    if draining:
                        continue  # no arrivals past the horizon
                    if uniform_fast:
                        if id_i >= TWO_BLOCK:
                            id_block = rng.integers(
                                0, num_nodes, size=TWO_BLOCK
                            ).tolist()
                            id_i = 0
                        src = id_block[id_i]
                        dst = id_block[id_i + 1]
                        id_i += 2
                    else:
                        if uniform_sources:
                            src = sources[int(rng.integers(nsrc))]
                        else:
                            src = sources[
                                int(
                                    searchsorted(
                                        source_cdf, rng.random(), side="right"
                                    )
                                )
                            ]
                        dst = dest_sample(src, rng)
                    measured = t >= warmup
                    if measured:
                        generated += 1
                    if src == dst:
                        if measured:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                            if delays is not None:
                                delays.append(0.0)
                    else:
                        if det_get is not None:
                            ol = det_get(src * num_nodes + dst)
                            if ol is None:
                                ol = det_build(src, dst)
                            off, ln = ol
                        else:
                            off, ln = sample_offlen(src, dst, rng)
                        f = arena[off]
                        if busy[f] and len(queues[f]) >= cap[f]:
                            if measured:
                                dropped += 1
                                node_drops[tail[f]] += 1
                        else:
                            in_system += 1
                            remaining += ln
                            if sat is not None:
                                nsat = 0
                                for k in range(off, off + ln):
                                    if sat[arena[k]]:
                                        nsat += 1
                                remaining_sat += nsat
                            new_pkt = [t, off, ln, 0, measured]
                            if busy[f]:
                                q = queues[f]
                                q.append(new_pkt)
                                if (
                                    track_maxima
                                    and measured
                                    and not draining
                                    and len(q) > max_queue
                                ):
                                    max_queue = len(q)
                            else:
                                busy[f] = 1
                                if fast_service:
                                    pushe((t + st[f], seq, f, new_pkt))
                                    seq += 1
                                else:
                                    start_service_heap(f, t, new_pkt)
                    # Next arrival.
                    if exp_i >= BLK:
                        exp_block = rng.exponential(size=BLK)
                        exp_i = 0
                    pushe((t + exp_block[exp_i] * gap_scale, seq, -1, None))
                    exp_i += 1
                    seq += 1
                else:
                    # ----- departure: pkt finished service at edge e -----
                    remaining -= 1
                    if sat is not None and sat[e]:
                        remaining_sat -= 1
                    hop = pkt[3] + 1
                    if hop == pkt[2]:
                        in_system -= 1
                        if pkt[4]:
                            completed += 1
                            d = t - pkt[0]
                            delay_acc.add(pkt[0], d)
                            if track_maxima and d > max_delay:
                                max_delay = d
                            if delays is not None:
                                delays.append(d)
                    else:
                        f = arena[pkt[1] + hop]
                        if busy[f] and len(queues[f]) >= cap[f]:
                            in_system -= 1
                            remaining -= pkt[2] - hop
                            if sat is not None:
                                nsat = 0
                                for k in range(pkt[1] + hop, pkt[1] + pkt[2]):
                                    if sat[arena[k]]:
                                        nsat += 1
                                remaining_sat -= nsat
                            if pkt[4]:
                                dropped += 1
                                node_drops[tail[f]] += 1
                        else:
                            pkt[3] = hop
                            if busy[f]:
                                qf = queues[f]
                                qf.append(pkt)
                                if (
                                    track_maxima
                                    and not draining
                                    and t >= warmup
                                    and len(qf) > max_queue
                                ):
                                    max_queue = len(qf)
                            else:
                                busy[f] = 1
                                if fast_service:
                                    pushe((t + st[f], seq, f, pkt))
                                    seq += 1
                                else:
                                    start_service_heap(f, t, pkt)
                    q = queues[e]
                    if q:
                        nxt = q.popleft()
                        if fast_service:
                            pushe((t + st[e], seq, e, nxt))
                            seq += 1
                        else:
                            start_service_heap(e, t, nxt)
                    else:
                        busy[e] = 0

        if last_t < t_end:
            lo = last_t if last_t > warmup else warmup
            dt = t_end - lo
            int_n += in_system * dt
            int_r += remaining * dt
            int_rs += remaining_sat * dt
            if ndist is not None:
                ndist[in_system] = ndist.get(in_system, 0.0) + dt

        mean_number = int_n / horizon
        summary = delay_acc.summary()
        if ndist is not None:
            total_dt = sum(ndist.values())
            ndist = {k: v / total_dt for k, v in sorted(ndist.items())}
        return SimResult(
            warmup=warmup,
            horizon=horizon,
            seed=self.seed,
            generated=generated,
            completed=completed,
            zero_hop=zero_hop,
            in_flight_at_end=in_flight_at_horizon,
            mean_number=mean_number,
            mean_remaining=int_r / horizon,
            mean_remaining_saturated=(
                int_rs / horizon if sat is not None else float("nan")
            ),
            mean_delay=summary.mean,
            delay_half_width=summary.half_width,
            mean_delay_littles=mean_number / self.total_rate,
            total_rate=self.total_rate,
            utilization=util / horizon if util is not None else None,
            delays=np.asarray(delays) if delays is not None else None,
            number_distribution=ndist,
            max_delay=max_delay if track_maxima else float("nan"),
            max_queue_length=max_queue if track_maxima else -1,
            dropped=dropped,
            node_drops=np.asarray(node_drops, dtype=np.int64),
        )
