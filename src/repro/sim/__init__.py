"""Discrete-event simulation of packet-routing queueing networks.

The engine reproduces the paper's model exactly: Poisson generation at each
node, unit-time (or per-edge deterministic, or exponential for the Jackson
comparison) transmission, one packet per edge at a time, infinite FIFO
buffers. Four simulators share the measurement machinery:

* :class:`NetworkSimulation` — FIFO servers, deterministic or exponential
  service (the standard model and the Jackson model);
* :class:`PSNetworkSimulation` — processor-sharing servers (the Theorem 5
  comparator);
* :class:`RushedNetworkSimulation` — the Theorem 10 "copies" system Q1;
* :class:`SlottedNetworkSimulation` — the Section 5.2 slotted-time variant.

Statistics are *exact time integrals* of the piecewise-constant processes
N(t) (packets in system), R(t) (remaining services) and R_s(t) (remaining
saturated services), so E[N], r = E[R]/E[N] and r_s = E[R_s]/E[N] — the
quantities of Tables II and III — carry no sampling error beyond the
trajectory itself.
"""

from repro.sim.result import SimResult
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.rushed_network import RushedNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.sim.measurement import BatchMeans, TimeBatchAccumulator

__all__ = [
    "SimResult",
    "NetworkSimulation",
    "PSNetworkSimulation",
    "RushedNetworkSimulation",
    "SlottedNetworkSimulation",
    "BatchMeans",
    "TimeBatchAccumulator",
]
