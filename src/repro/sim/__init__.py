"""Discrete-event simulation of packet-routing queueing networks.

The engine reproduces the paper's model exactly: Poisson generation at each
node, unit-time (or per-edge deterministic, or exponential for the Jackson
comparison) transmission, one packet per edge at a time, infinite FIFO
buffers. Five simulators share the measurement machinery:

* :class:`NetworkSimulation` — FIFO servers, deterministic or exponential
  service (the standard model and the Jackson model);
* :class:`FiniteBufferNetworkSimulation` — the same model with per-node
  finite buffers and tail-drop loss (``buffer_size=None`` reproduces the
  FIFO engine bit-for-bit; otherwise the result carries per-node drop
  counts and a loss probability);
* :class:`PSNetworkSimulation` — processor-sharing servers (the Theorem 5
  comparator);
* :class:`RushedNetworkSimulation` — the Theorem 10 "copies" system Q1
  (with optional saturated-copy tracking and per-packet maxima since the
  capability-parity work);
* :class:`SlottedNetworkSimulation` — the Section 5.2 slotted-time variant.

Statistics are *exact time integrals* of the piecewise-constant processes
N(t) (packets in system), R(t) (remaining services) and R_s(t) (remaining
saturated services), so E[N], r = E[R]/E[N] and r_s = E[R_s]/E[N] — the
quantities of Tables II and III — carry no sampling error beyond the
trajectory itself.

The declarative facade
----------------------
One run is one trajectory; every table in the paper is "the same cell,
many seeds". Two registries plus one spec type cover that whole space:

* **scenarios** (:mod:`repro.scenarios`) name the workload — topology +
  router + destination law + load calibration;
* **engines** (:mod:`repro.sim.registry`) name the simulator — ``fifo``
  (alias ``event``), ``finite``, ``slotted``, ``rushed``, ``ps`` — each
  entry carrying its supported service laws, its typed engine-specific
  knobs (:class:`~repro.sim.registry.EngineParam`: fifo/finite/rushed/ps
  ``event_queue``, slotted ``batch_rng``, per-edge ``service_rates``,
  the finite engine's ``buffer_size``, the kernel-layer engines'
  ``backend``), its supported kernel backends
  (:attr:`~repro.sim.registry.Engine.backends`) and the ``run_cell``
  builder the replication layer dispatches to;
* a :class:`CellSpec` is the declarative cross of the two — scenario
  name, size, load, engine name, ``engine_params``, window, seeds —
  validated against both registries at construction, hashable and
  picklable. Hand it (or a whole batch) to a :class:`ReplicationEngine`,
  which fans every (cell, seed) pair over a process pool and pools each
  cell into a :class:`ReplicatedResult` with across-replication means
  and ~95% confidence intervals.

Any scenario x engine x service x event-queue combination is one spec::

    from repro.sim import CellSpec, ReplicationEngine

    spec = CellSpec(scenario="hotspot", n=8, rho=0.8, engine="rushed",
                    warmup=200, horizon=2000, seeds=tuple(range(8)),
                    engine_params=(("event_queue", "heap"),))
    pooled = ReplicationEngine(processes=4).run(spec)
    print(pooled.render())  # per-seed rows + pooled row with CIs

The facade is a pure dispatch layer: a cell reached through it is
bit-identical to the same simulator built by hand (pinned by the
``api_*`` golden cells). Registering a new engine
(:func:`repro.sim.registry.register_engine`) immediately makes it
reachable from ``CellSpec``, ``python -m repro simulate --engine ...``,
``python -m repro engines`` and the experiment sweeps.

The replication fan-out
-----------------------
``ReplicationEngine.run_many`` is the one parallelism substrate every
table, experiment and sweep rides. Its parallel path is built from four
pieces, each independently pinned by tests:

* **Persistent warm pools** (:mod:`repro.util.workerpool`). Pools are
  keyed by worker count in a shared registry (``get_pool``), created
  lazily, and *reused* across ``run_many`` calls and whole sweeps —
  worker processes keep their imports, their per-cell ``(network,
  cache)`` memo and their attached shared-memory segments warm instead
  of paying pool start-up per call. ``pmap`` is a thin ordered-map
  wrapper over the same pools; ``REPRO_PROCESSES`` overrides the
  default worker count everywhere.
* **Shared-memory cell snapshots** (:mod:`repro.sim.sharedcells`). Per
  batch, the parent publishes the read-only cell state — the path
  arena's ``int32`` edge table plus complete dense path tables (warmed
  by parent-side precompute up to 128 nodes), pinned per-source rates
  and their CDF, the saturated-edge mask — into one
  ``multiprocessing.shared_memory`` block that workers attach
  zero-copy. A job payload is a ``(token, cell_index, position,
  seed_chunk)`` tuple of scalars — no network, no arena, no spec copies
  per seed. The parent closes *and unlinks* every block when its batch
  ends, so nothing leaks (and the resource tracker stays quiet).
* **Streaming aggregation.** Seed chunks are tagged and fanned through
  ``imap_unordered``; finished replications fold into their cell's slot
  as they arrive, each completed cell is surfaced through the optional
  ``on_result`` callback immediately (completion order), and the
  returned list — like every cell's ``replications`` — always follows
  input/``spec.seeds`` order. The serial path (``processes=1``) never
  touches a pool or shared memory and is bit-identical to the parallel
  path, which is itself pinned against the serial reference for all
  five engines.
* **Resumable sweeps** (:mod:`repro.experiments.sweeps`, CLI ``python
  -m repro sweep spec.json``). A declarative JSON/CSV spec expands to
  cells with deterministic ids; each cell checkpoints atomically into
  its own directory via ``on_result`` as it completes, restarts skip
  checkpointed cells, and the aggregate table regenerated from disk is
  byte-identical between an interrupted-and-resumed sweep and an
  uninterrupted one.

Shared constructor policy
-------------------------
All four engines resolve their constructor arguments through
:class:`repro.sim.enginecommon.EngineCommon`: source-node list, per-node
rate validation, the pinned source CDF behind the boundary-safe
``side='right'`` draw, the uniform fast-id predicate and the shared path
cache. The one deliberate asymmetry is the fast-id source-order mode:
the event-driven engines accept any full source set (``SORTED_IDS``),
the slotted compat kernel requires the identity order
(``IDENTITY_IDS``), and PS opts out (``NO_FAST_IDS``) — a load-bearing
difference the identity-vs-sorted regression tests pin.

The kernels layer and the two-backend contract
----------------------------------------------
The FIFO, finite-buffer and slotted engines route their hot loops
through :mod:`repro.sim.kernels`, selected by the ``backend``
constructor knob (and the matching ``backend`` engine param on the
facade):

========== ============================ ==============================
engine     ``backend="python"``         ``backend="numpy"``
========== ============================ ==============================
``fifo``   reference loop (default)     max-plus level sweep; uniform
                                        deterministic service only
``finite`` reference loop (default)     ``buffer_size=None`` only
                                        (delegates to the fifo kernel)
``slotted``reference loop (default)     batched slot kernel;
                                        ``batch_rng=True`` only
``rushed`` reference loop               —
``ps``     reference loop               —
========== ============================ ==============================

The contract has two tiers. ``backend="python"`` is the extracted
reference: *bit-identical* to the pre-extraction engines, bound by the
same-seed golden fixtures, and it never imports the vectorized module
(the optional-dependency boundary the ``fast`` extra documents).
``backend="numpy"`` solves whole trajectories over the path arena's
``int32`` snapshot — blocked draws first, then a feedforward max-plus
sweep over edge-precedence levels — and is *seed-stable* (same seed,
same result) and *statistically equivalent*, but not
draw-order-identical: blocked draws interleave differently once a run
crosses an RNG block boundary, and equal-eligibility slot ties may
swap. Distribution-level parity tests (``tests/test_sim_kernels.py``)
pin that tier, the same discipline as the slotted ``batch_rng``
redefinition. Options the vectorized kernels cannot honour
(``track_maxima``, ``track_utilization``, finite buffers, exponential
service, routes whose edge-precedence graph has cycles — e.g. torus
wrap-around) raise ``ValueError`` pointing back to ``backend="python"``
rather than degrading silently.

Hot-path architecture
---------------------
The per-packet work of all four engines is built around four ideas:

**Shared path-cache arena** (:mod:`repro.routing.pathcache`). Paths are
memoized once per ``(src, dst)`` pair into one flat append-only edge-id
store (a Python list the interpreter loops index directly, with an
``int32`` snapshot view for NumPy-side consumers). A packet record is
``[t0, arena_offset, length, hops_done, measured]`` — five scalars, no
edge tuple — and "which edge next" is ``arena[offset + hop]``, one list
index. Deterministic routers resolve a packet's path with a single dict
probe; the Section 6 randomized scheme keeps two tables (row-first /
column-first) on one arena, composed from a shared memoized leg store,
and draws exactly the one coin the uncached scheme drew. Caches only
grow and never influence outputs, so the replication engine shares one
``(network, cache)`` per cell across all of the cell's seeded
replications (per worker process) instead of rebuilding per task — and
pool workers adopt the parent's precomputed cache straight out of
shared memory (:mod:`repro.sim.sharedcells`) when the network is small
enough to publish in full.

All four simulators resolve paths through one cache built by
``path_cache_for`` — which now has a specialised miss-path builder for
every shipped deterministic topology (leg-composed for mesh, torus and
k-d arrays; closed-form for hypercube and butterfly) — so no engine and
no topology falls back to per-packet path building unless explicitly
asked to (``use_path_cache=False``).

**Monotone merge where service is uniform deterministic; a calendar
queue where it is not.** With one deterministic service time everywhere
(the standard model), departures are pushed in nondecreasing time
order, so the event engine, the finite-buffer engine (drops never
schedule events) and the rushed engine replace the priority queue with
an O(1) merge of a departure deque and the pending arrival. The
stochastic-service cases (exponential service, per-edge rates) run on
a pluggable event queue (:mod:`repro.sim.eventqueue`): a *calendar
queue* — a bucketed event list whose buckets are sorted once on
activation, with a small day-heap skipping empty buckets, and whose
bucket width is re-estimated from queue occupancy by Brown's rule
(``"calendar"``, the default; ``"calendar-fixed"`` pins the initial
width) — or the classic binary heap. All pop the exact ``(time, seq)``
order, so the choice is benchmarkable without touching the contract.
PS has no monotone structure to exploit (completions are re-planned on
every queue change), so its versioned-event loop rides the same
pluggable queue — ``event_queue="calendar"`` by default, bit-identical
across all kinds.

**Blocked and batched draws.** NumPy ``Generator`` array fills are
stream-identical to the same number of consecutive scalar draws of the
same kind. The engines exploit that: the event engine consumes
exponential gaps and uniform id pairs from 8192-size blocks (ids refill
exactly when all ``2 * 8192`` are consumed); the slotted engine samples a
whole slot's sources/destinations/path views with single vectorized calls
whenever the legacy per-packet draw sequence was a run of same-kind draws
(uniform id pairs; RNG-free destination laws), and otherwise keeps the
scalar loop. ``batch_rng=True`` — the slotted default since the registry
redesign closed the ROADMAP deprecation window (``batch_rng=False``
keeps the legacy stream, pinned by the ``slotted_*_compat`` golden
cells) — goes further and *redefines* the draw order: Poisson counts
blocked like the event engine's exponentials, then per slot: source
batch, destination ``sample_batch``, router coin batch — trading
bit-compatibility for full vectorization of data-dependent laws
(hot-spot, geometric).

Statically enforced invariants
------------------------------
Several of the contracts above are now *statically* pinned by the
repo's own checker, **replint** (:mod:`repro.analysis`, CLI ``python -m
repro.analysis``), which CI runs as a merge gate next to the tests
(``LINT=1 scripts/check.sh`` locally):

* **rng-discipline** — CDF bisection must be the boundary-safe
  ``searchsorted(cdf, u, side='right')`` form; sim-layer hot paths must
  draw blocked (``size=``) rather than scalar Poisson/exponential
  draws; engine code must not consult wall clocks, iterate bare sets or
  pop dict entries in unspecified order. This is the bit-identity
  contract of the previous section, enforced at the source level.
* **backend-boundary** — the static proof behind the kernels layer's
  optional-dependency boundary: ``kernels/__init__.py`` stays
  numpy-free, ``numpy_backend`` is imported only inside ``get_kernel``,
  and the selection layer's module-level import closure reaches neither
  ``numpy`` nor the vectorized module. The subprocess tests in
  ``tests/test_sim_kernels.py`` remain the runtime backstop.
* **registry-consistency** — every registered
  :class:`~repro.sim.registry.EngineParam` must be a real
  constructor/run parameter of the simulator class behind the engine,
  and capability flags (``supports_saturated``, ``supports_maxima``,
  ``backends``) must describe options the class actually accepts.
  Registering a new engine therefore fails the lint gate until its
  metadata and its class agree.
* **shm-hygiene** — every ``SharedMemory(create=True)`` site needs a
  cleanup owner (with-block, try/finally, or an owning class whose
  ``close()`` both closes and unlinks), and ``publish_cells`` must be
  entered as a context manager: the parent-creates/parent-unlinks
  contract of the replication fan-out, statically.

Intentional exceptions carry a ``# replint: disable=RULE`` comment with
a reason (the legacy per-slot Poisson draw and the PS re-planned
exponential gap are the shipped examples — their scalar draw order *is*
the pinned stream). A strict mypy tier (see ``pyproject.toml``) covers
the kernels, registry, shared-cells, pool and sweep modules for the
same reason: those carry the cross-process contracts.

**Why same-seed bit-identity is the regression contract.** A stochastic
simulation has no other cheap, exact oracle: statistical assertions pass
under subtly wrong optimisations (a dropped id, a reordered draw, a
reassociated float sum all vanish into the noise). Pinning the exact
same-seed ``SimResult`` of the pre-optimisation engines (golden fixtures
in ``tests/golden/``) makes the RNG draw order, the event ordering and
the floating-point accumulation order all observable, so every hot-path
change is either provably output-neutral or an explicit, documented
contract change (regenerate via ``tests/golden/regen.py``). This is why
the monotone-merge event loop replays the heap's exact ``(time, seq)``
pop order, and why the slotted engine's default kernel only vectorizes
stream-compatible draw runs.
"""

from repro.sim.result import SimResult
from repro.sim.enginecommon import EngineCommon
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.finite_buffer import FiniteBufferNetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.rushed_network import RushedNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.sim.measurement import BatchMeans, TimeBatchAccumulator
from repro.sim.registry import (
    Engine,
    EngineParam,
    available_engines,
    canonical_engine,
    get_engine,
    register_engine,
)
from repro.sim.replication import (
    CellSpec,
    ReplicatedResult,
    ReplicationEngine,
    replicate,
)

__all__ = [
    "SimResult",
    "EngineCommon",
    "NetworkSimulation",
    "FiniteBufferNetworkSimulation",
    "PSNetworkSimulation",
    "RushedNetworkSimulation",
    "SlottedNetworkSimulation",
    "BatchMeans",
    "TimeBatchAccumulator",
    "Engine",
    "EngineParam",
    "available_engines",
    "canonical_engine",
    "get_engine",
    "register_engine",
    "CellSpec",
    "ReplicatedResult",
    "ReplicationEngine",
    "replicate",
]
