"""Discrete-event simulation of packet-routing queueing networks.

The engine reproduces the paper's model exactly: Poisson generation at each
node, unit-time (or per-edge deterministic, or exponential for the Jackson
comparison) transmission, one packet per edge at a time, infinite FIFO
buffers. Four simulators share the measurement machinery:

* :class:`NetworkSimulation` — FIFO servers, deterministic or exponential
  service (the standard model and the Jackson model);
* :class:`PSNetworkSimulation` — processor-sharing servers (the Theorem 5
  comparator);
* :class:`RushedNetworkSimulation` — the Theorem 10 "copies" system Q1;
* :class:`SlottedNetworkSimulation` — the Section 5.2 slotted-time variant.

Statistics are *exact time integrals* of the piecewise-constant processes
N(t) (packets in system), R(t) (remaining services) and R_s(t) (remaining
saturated services), so E[N], r = E[R]/E[N] and r_s = E[R_s]/E[N] — the
quantities of Tables II and III — carry no sampling error beyond the
trajectory itself.

Multi-seed runs
---------------
One run is one trajectory; every table in the paper is "the same cell,
many seeds". :mod:`repro.sim.replication` provides that layer: declare a
cell once as a :class:`CellSpec` (scenario name from
:mod:`repro.scenarios`, load, engine, window, seeds) and hand it to a
:class:`ReplicationEngine`, which fans the replications over a process
pool and pools them into a :class:`ReplicatedResult` with
across-replication means and ~95% confidence intervals. The same spec
runs on the event-driven or the slotted engine, so cross-engine parity is
one field away::

    from repro.sim import CellSpec, ReplicationEngine

    spec = CellSpec(scenario="hotspot", n=8, rho=0.8,
                    warmup=200, horizon=2000, seeds=tuple(range(8)))
    pooled = ReplicationEngine(processes=4).run(spec)
    print(pooled.render())  # per-seed rows + pooled row with CIs

Scenarios (topology + router + destination law) are registered by name in
:mod:`repro.scenarios`; built-ins cover the paper's standard model plus
hot-spot, transpose, bit-reversal, distance-biased and torus workloads.
"""

from repro.sim.result import SimResult
from repro.sim.fifo_network import NetworkSimulation
from repro.sim.ps_network import PSNetworkSimulation
from repro.sim.rushed_network import RushedNetworkSimulation
from repro.sim.slotted import SlottedNetworkSimulation
from repro.sim.measurement import BatchMeans, TimeBatchAccumulator
from repro.sim.replication import (
    CellSpec,
    ReplicatedResult,
    ReplicationEngine,
    replicate,
)

__all__ = [
    "SimResult",
    "NetworkSimulation",
    "PSNetworkSimulation",
    "RushedNetworkSimulation",
    "SlottedNetworkSimulation",
    "BatchMeans",
    "TimeBatchAccumulator",
    "CellSpec",
    "ReplicatedResult",
    "ReplicationEngine",
    "replicate",
]
