"""Slotted-time simulation (Section 5.2's discrete-time variant).

"The results here also hold asymptotically for slotted time, where the
time axis is not continuous but instead consists of slots of some fixed
duration tau. Arrivals in this model are assumed to come in batches, the
number of arrivals at a slot being a Poisson random variable with mean
lam*tau." The paper argues the average delay differs from the continuous
model by at most tau.

Model implemented: at the start of each slot a Poisson batch of packets is
generated (sources/destinations as in the continuous model); during the
slot every non-empty edge transmits exactly its head-of-line packet, and
all deliveries land simultaneously at the end of the slot. Delays count
whole slots from the generation slot's start to the arrival instant.

Implementation notes:

* only non-empty edges are touched each slot (an active set), so quiet
  networks cost O(arrivals + moves), not O(E), per slot — the same
  lazy-work discipline as the event-driven engine;
* paths come from the shared :mod:`repro.routing.pathcache` arena and the
  packet record stores an ``(arena_offset, length)`` view;
* the whole Poisson batch of a slot is sampled with vectorized kernels
  wherever that reproduces the legacy per-packet RNG draw order exactly
  (see *RNG compatibility* below); ``run(batch_rng=True)`` — the default
  since the engine-registry redesign closed the ROADMAP deprecation
  window — lifts that restriction and batches everything, including the
  per-slot Poisson counts themselves (drawn in 8192-size blocks like the
  event engine's exponential and id blocks). ``batch_rng=False`` keeps
  the legacy-compatible stream.

RNG compatibility
-----------------
The compat kernel (``batch_rng=False``) is bound by the same-seed
bit-identity contract (see :mod:`repro.sim` docs): it must consume the
RNG exactly like the original per-packet loop. NumPy ``Generator`` array draws are stream-identical to
the same number of consecutive scalar draws, so a slot *can* be batched
whenever the legacy draw sequence was a run of same-kind draws:

* uniform sources over all nodes + uniform destinations — the legacy
  ``src, dst, src, dst, ...`` draws are all bounded integers with one
  bound, batched as a single ``integers(0, n, 2k)`` call (the event
  engine's fast-id discipline);
* RNG-free destination laws (fixed permutations) — only the source draws
  touch the RNG and they are consecutive, batched as one call.

Data-dependent laws (hot-spot's conditional uniform draw, the geometric
stopping chain, randomized routing coins interleaved with id draws) keep
the scalar per-packet loop — still path-cached — because no batch can
replay their interleaved stream. ``batch_rng=True`` instead *redefines*
the draw order (Poisson count blocks, then per slot: source batch,
``sample_batch`` destination batch, router coin batch) and is the fast
path for those laws; it is seed-stable and pinned by its own regression
values, but intentionally not bit-compatible with the legacy stream.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.enginecommon import (
    IDENTITY_IDS,
    EngineCommon,
    resolve_saturated_mask,
)
from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.util.validation import check_positive

_BLOCK = 8192


class SlottedNetworkSimulation:
    """Slotted-time FIFO network simulation with unit-slot transmission.

    Parameters mirror :class:`repro.sim.NetworkSimulation`; the slot
    duration ``tau`` scales the batch mean (``total_rate * tau`` packets
    per slot) and the reported times (delays are in the same units as the
    continuous model: slot index times ``tau``). ``use_path_cache`` /
    ``path_cache`` control the shared path-cache arena exactly as in the
    event engine.
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        tau: float = 1.0,
        source_nodes: Sequence[int] | None = None,
        saturated_mask: Sequence[bool] | None = None,
        seed: int = 0,
        use_path_cache: bool = True,
        path_cache=None,
    ) -> None:
        self.tau = check_positive(tau, "tau")
        self.seed = int(seed)
        # Shared constructor policy (sources, rates, pinned source CDF,
        # fast-id predicate, path cache). Batched id pairs need every node
        # generating at equal rate with the *identity* source order (so
        # drawn ids are node ids) and uniform destinations — then the
        # legacy src/dst draws are one flat run of same-bound integer
        # draws. The event engines only need sorted order; the difference
        # is load-bearing (IDENTITY_IDS here).
        EngineCommon(
            router,
            destinations,
            node_rate,
            source_nodes=source_nodes,
            fast_id_order=IDENTITY_IDS,
            path_cache=path_cache,
            use_path_cache=use_path_cache,
        ).install(self)
        self._sat = resolve_saturated_mask(
            saturated_mask, self.topology.num_edges
        )

    def run(
        self,
        warmup_slots: int,
        horizon_slots: int,
        *,
        delay_batches: int = 32,
        track_maxima: bool = False,
        collect_delays: bool = False,
        batch_rng: bool = True,
    ) -> SimResult:
        """Simulate ``warmup_slots + horizon_slots`` slots, then drain.

        All times in the result are in continuous units (slots * tau).

        Parameters
        ----------
        delay_batches:
            Number of time batches for the delay confidence interval.
        track_maxima:
            Also record the worst per-packet delay of measured packets and
            the longest queue observed during measurement-window slots;
            queues standing when the warmup ends seed the maximum at the
            crossing, mirroring the event engine's warmup-window
            semantics.
        collect_delays:
            Return the raw delay of every measured packet (one float per
            packet, in completion order — zero-hop packets at generation).
        batch_rng:
            Use the fully batched draw order (blocked Poisson counts,
            per-slot source/destination/coin batches). Deterministic per
            seed and statistically identical, but *not* bit-compatible
            with the legacy per-packet stream — see the module docstring.
            **Default True** since the engine-registry redesign (the
            documented behaviour change that re-pinned the slotted golden
            cells); pass ``batch_rng=False`` for the legacy stream, which
            stays pinned by its own ``*_compat`` golden cells.
        """
        if warmup_slots < 0 or horizon_slots <= 0:
            raise ValueError("need warmup_slots >= 0 and horizon_slots > 0")
        rng = np.random.default_rng(self.seed)
        tau = self.tau
        warmup = warmup_slots * tau
        horizon = horizon_slots * tau
        t_end_slot = warmup_slots + horizon_slots
        batch_mean = self.total_rate * tau
        num_nodes = self.topology.num_nodes
        sat = self._sat

        uniform_sources = self._uniform_sources
        fast_ids = self._fast_ids
        sources = self.source_nodes
        source_arr = np.asarray(sources, dtype=np.int64)
        nsrc = len(sources)
        source_cdf = self._source_cdf
        destinations = self.destinations
        dest_sample = destinations.sample
        dest_sample_batch = getattr(destinations, "sample_batch", None)
        dest_rng_free = not getattr(destinations, "consumes_rng", True)

        cache = self.path_cache
        arena = cache.arena.edges  # extended in place; safe to bind once
        cache_rng_free = not cache.consumes_rng
        if cache_rng_free:
            offlen_batch = cache.offlen_batch
            det_get = cache.table.get
            det_build = cache.ensure
        else:
            offlen_batch = None
            det_get = det_build = None
        sample_offlen = cache.sample_offlen
        sample_offlen_batch = cache.sample_offlen_batch
        # Which vectorized kernel may run under the legacy-stream contract:
        # fast id pairs, or consecutive source draws with an RNG-free law.
        compat_pairs = fast_ids and cache_rng_free
        compat_src_batch = dest_rng_free and cache_rng_free

        queues: list[deque] = [deque() for _ in range(self.topology.num_edges)]
        active: set[int] = set()
        in_system = 0
        remaining = 0
        remaining_sat = 0
        int_n = int_r = int_rs = 0.0
        generated = completed = zero_hop = 0
        in_flight_at_horizon = 0
        delay_acc = TimeBatchAccumulator(warmup, warmup + horizon, delay_batches)
        delays: list[float] | None = [] if collect_delays else None
        max_delay = 0.0
        max_queue = 0
        maxima_seeded = not track_maxima or warmup_slots == 0
        count_block: list[int] = []
        count_i = 0
        counts_drawn = 0

        slot = 0
        while True:
            t = slot * tau
            measuring = warmup_slots <= slot < t_end_slot
            draining = slot >= t_end_slot
            if draining and in_system == 0:
                break
            if not maxima_seeded and slot >= warmup_slots:
                # Queues standing at the warmup crossing belong to the
                # measurement window (event-engine parity).
                maxima_seeded = True
                for q in queues:
                    if len(q) > max_queue:
                        max_queue = len(q)
            # --- batch arrivals at slot start ---
            if not draining:
                if batch_rng:
                    if count_i >= len(count_block):
                        size = min(_BLOCK, t_end_slot - counts_drawn)
                        count_block = rng.poisson(batch_mean, size=size).tolist()
                        counts_drawn += size
                        count_i = 0
                    k = count_block[count_i]
                    count_i += 1
                else:
                    k = int(rng.poisson(batch_mean))
                if k:
                    # Draw the slot's sources/destinations/paths. Every
                    # branch enqueues packets in identical order; they
                    # differ only in how many RNG calls produce the draws.
                    offs = lens = None
                    if compat_pairs:
                        ids = rng.integers(0, num_nodes, size=2 * k)
                        srcs_a = ids[0::2]
                        dsts_a = ids[1::2]
                    elif batch_rng or compat_src_batch:
                        if uniform_sources:
                            srcs_a = source_arr[rng.integers(0, nsrc, size=k)]
                        else:
                            srcs_a = source_arr[
                                np.searchsorted(
                                    source_cdf, rng.random(k), side="right"
                                )
                            ]
                        if dest_sample_batch is not None:
                            dsts_a = np.asarray(dest_sample_batch(srcs_a, rng))
                        else:
                            dsts_a = np.asarray(
                                [dest_sample(int(s), rng) for s in srcs_a.tolist()]
                            )
                    else:
                        # Interleaved data-dependent draws: keep the legacy
                        # scalar order (bit-identity), path-cached below.
                        srcs_a = dsts_a = None
                    if srcs_a is not None:
                        nz = srcs_a != dsts_a
                        if nz.any():
                            if cache_rng_free:
                                offs, lens = offlen_batch(srcs_a[nz], dsts_a[nz])
                            else:
                                offs, lens = sample_offlen_batch(
                                    srcs_a[nz], dsts_a[nz], rng
                                )
                            offs = offs.tolist()
                            lens = lens.tolist()
                        srcs = srcs_a.tolist()
                        dsts = dsts_a.tolist()
                    at = 0  # index into offs/lens (non-zero-hop packets)
                    for i in range(k):
                        if srcs_a is not None:
                            src = srcs[i]
                            dst = dsts[i]
                        else:
                            if uniform_sources:
                                src = sources[int(rng.integers(nsrc))]
                            else:
                                # side="right": a boundary draw must not
                                # pick a zero-rate source (see the event
                                # engine).
                                src = sources[
                                    int(
                                        np.searchsorted(
                                            source_cdf,
                                            rng.random(),
                                            side="right",
                                        )
                                    )
                                ]
                            dst = dest_sample(src, rng)
                        if measuring:
                            generated += 1
                        if src == dst:
                            if measuring:
                                zero_hop += 1
                                completed += 1
                                delay_acc.add(t, 0.0)
                                if delays is not None:
                                    delays.append(0.0)
                            continue
                        if offs is not None:
                            off = offs[at]
                            ln = lens[at]
                            at += 1
                        elif det_get is not None:
                            ol = det_get(src * num_nodes + dst)
                            if ol is None:
                                ol = det_build(src, dst)
                            off, ln = ol
                        else:
                            off, ln = sample_offlen(src, dst, rng)
                        in_system += 1
                        remaining += ln
                        if sat is not None:
                            nsat = 0
                            for e_i in range(off, off + ln):
                                if sat[arena[e_i]]:
                                    nsat += 1
                            remaining_sat += nsat
                        f = arena[off]
                        q = queues[f]
                        q.append([t, off, ln, 0, measuring])
                        active.add(f)
                        if track_maxima and measuring and len(q) > max_queue:
                            max_queue = len(q)
            # --- per-slot occupancy integrals (state during the slot) ---
            if measuring:
                int_n += in_system * tau
                int_r += remaining * tau
                int_rs += remaining_sat * tau
            if slot + 1 == t_end_slot:
                in_flight_at_horizon = in_system
            # --- simultaneous transmission: one head per non-empty edge ---
            deliveries = []
            emptied = []
            for e in active:
                pkt = queues[e].popleft()
                deliveries.append(pkt)
                if not queues[e]:
                    emptied.append(e)
            for e in emptied:
                active.discard(e)
            arrive_t = t + tau
            for pkt in deliveries:
                remaining -= 1
                if sat is not None and sat[arena[pkt[1] + pkt[3]]]:
                    remaining_sat -= 1
                hop = pkt[3] + 1
                if hop == pkt[2]:
                    in_system -= 1
                    if pkt[4]:
                        completed += 1
                        d = arrive_t - pkt[0]
                        delay_acc.add(pkt[0], d)
                        if track_maxima and d > max_delay:
                            max_delay = d
                        if delays is not None:
                            delays.append(d)
                else:
                    pkt[3] = hop
                    f = arena[pkt[1] + hop]
                    qf = queues[f]
                    qf.append(pkt)
                    active.add(f)
                    if track_maxima and measuring and len(qf) > max_queue:
                        max_queue = len(qf)
            slot += 1

        mean_number = int_n / horizon
        summary = delay_acc.summary()
        return SimResult(
            warmup=warmup,
            horizon=horizon,
            seed=self.seed,
            generated=generated,
            completed=completed,
            zero_hop=zero_hop,
            in_flight_at_end=in_flight_at_horizon,
            mean_number=mean_number,
            mean_remaining=int_r / horizon,
            mean_remaining_saturated=(
                int_rs / horizon if sat is not None else float("nan")
            ),
            mean_delay=summary.mean,
            delay_half_width=summary.half_width,
            mean_delay_littles=mean_number / self.total_rate,
            total_rate=self.total_rate,
            delays=np.asarray(delays) if delays is not None else None,
            max_delay=max_delay if track_maxima else float("nan"),
            max_queue_length=max_queue if track_maxima else -1,
        )
