"""Slotted-time simulation (Section 5.2's discrete-time variant).

"The results here also hold asymptotically for slotted time, where the
time axis is not continuous but instead consists of slots of some fixed
duration tau. Arrivals in this model are assumed to come in batches, the
number of arrivals at a slot being a Poisson random variable with mean
lam*tau." The paper argues the average delay differs from the continuous
model by at most tau.

Model implemented: at the start of each slot a Poisson batch of packets is
generated (sources/destinations as in the continuous model); during the
slot every non-empty edge transmits exactly its head-of-line packet, and
all deliveries land simultaneously at the end of the slot. Delays count
whole slots from the generation slot's start to the arrival instant.

Implementation note: only non-empty edges are touched each slot (an active
set), so quiet networks cost O(arrivals + moves), not O(E), per slot — the
same lazy-work discipline as the event-driven engine.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.util.validation import check_node_rates, check_positive, pinned_cdf


class SlottedNetworkSimulation:
    """Slotted-time FIFO network simulation with unit-slot transmission.

    Parameters mirror :class:`repro.sim.NetworkSimulation`; the slot
    duration ``tau`` scales the batch mean (``total_rate * tau`` packets
    per slot) and the reported times (delays are in the same units as the
    continuous model: slot index times ``tau``).
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        tau: float = 1.0,
        source_nodes: Sequence[int] | None = None,
        saturated_mask: Sequence[bool] | None = None,
        seed: int = 0,
    ) -> None:
        self.router = router
        self.topology = router.topology
        self.destinations = destinations
        self.tau = check_positive(tau, "tau")
        self.seed = int(seed)
        self.source_nodes = (
            list(range(self.topology.num_nodes))
            if source_nodes is None
            else [int(s) for s in source_nodes]
        )
        if np.isscalar(node_rate):
            check_positive(node_rate, "node_rate")
            self.node_rates = np.full(len(self.source_nodes), float(node_rate))
        else:
            self.node_rates = check_node_rates(
                node_rate, len(self.source_nodes), "node_rate"
            )
        self.total_rate = float(self.node_rates.sum())
        self._source_cdf = pinned_cdf(self.node_rates)
        num_edges = self.topology.num_edges
        if saturated_mask is None:
            self._sat: list[bool] | None = None
        else:
            mask = np.asarray(saturated_mask, dtype=bool)
            if mask.shape != (num_edges,):
                raise ValueError(f"saturated_mask must have {num_edges} entries")
            self._sat = mask.tolist()

    def run(
        self,
        warmup_slots: int,
        horizon_slots: int,
        *,
        delay_batches: int = 32,
    ) -> SimResult:
        """Simulate ``warmup_slots + horizon_slots`` slots, then drain.

        All times in the result are in continuous units (slots * tau).
        """
        if warmup_slots < 0 or horizon_slots <= 0:
            raise ValueError("need warmup_slots >= 0 and horizon_slots > 0")
        rng = np.random.default_rng(self.seed)
        tau = self.tau
        warmup = warmup_slots * tau
        horizon = horizon_slots * tau
        t_end_slot = warmup_slots + horizon_slots
        batch_mean = self.total_rate * tau
        uniform_sources = bool(np.allclose(self.node_rates, self.node_rates[0]))
        num_nodes = self.topology.num_nodes
        sat = self._sat

        queues: list[deque] = [deque() for _ in range(self.topology.num_edges)]
        active: set[int] = set()
        in_system = 0
        remaining = 0
        remaining_sat = 0
        int_n = int_r = int_rs = 0.0
        generated = completed = zero_hop = 0
        in_flight_at_horizon = 0
        delay_acc = TimeBatchAccumulator(warmup, warmup + horizon, delay_batches)

        slot = 0
        while True:
            t = slot * tau
            measuring = warmup_slots <= slot < t_end_slot
            draining = slot >= t_end_slot
            if draining and in_system == 0:
                break
            # --- batch arrivals at slot start ---
            if not draining:
                k = int(rng.poisson(batch_mean))
                for _ in range(k):
                    if uniform_sources:
                        src = self.source_nodes[int(rng.integers(len(self.source_nodes)))]
                    else:
                        # side="right": a boundary draw must not pick a
                        # zero-rate source (see the event engine).
                        src = self.source_nodes[
                            int(
                                np.searchsorted(
                                    self._source_cdf, rng.random(), side="right"
                                )
                            )
                        ]
                    dst = self.destinations.sample(src, rng)
                    if measuring:
                        generated += 1
                    if src == dst:
                        if measuring:
                            zero_hop += 1
                            completed += 1
                            delay_acc.add(t, 0.0)
                        continue
                    path = self.router.sample_path(src, dst, rng)
                    in_system += 1
                    remaining += len(path)
                    if sat is not None:
                        remaining_sat += sum(1 for e in path if sat[e])
                    f = path[0]
                    queues[f].append([t, path, 0, measuring])
                    active.add(f)
            # --- per-slot occupancy integrals (state during the slot) ---
            if measuring:
                int_n += in_system * tau
                int_r += remaining * tau
                int_rs += remaining_sat * tau
            if slot + 1 == t_end_slot:
                in_flight_at_horizon = in_system
            # --- simultaneous transmission: one head per non-empty edge ---
            deliveries = []
            emptied = []
            for e in active:
                pkt = queues[e].popleft()
                deliveries.append(pkt)
                if not queues[e]:
                    emptied.append(e)
            for e in emptied:
                active.discard(e)
            arrive_t = t + tau
            for pkt in deliveries:
                remaining -= 1
                if sat is not None and sat[pkt[1][pkt[2]]]:
                    remaining_sat -= 1
                pkt[2] += 1
                path = pkt[1]
                if pkt[2] == len(path):
                    in_system -= 1
                    if pkt[3]:
                        completed += 1
                        delay_acc.add(pkt[0], arrive_t - pkt[0])
                else:
                    f = path[pkt[2]]
                    queues[f].append(pkt)
                    active.add(f)
            slot += 1

        mean_number = int_n / horizon
        summary = delay_acc.summary()
        return SimResult(
            warmup=warmup,
            horizon=horizon,
            seed=self.seed,
            generated=generated,
            completed=completed,
            zero_hop=zero_hop,
            in_flight_at_end=in_flight_at_horizon,
            mean_number=mean_number,
            mean_remaining=int_r / horizon,
            mean_remaining_saturated=(
                int_rs / horizon if sat is not None else float("nan")
            ),
            mean_delay=summary.mean,
            delay_half_width=summary.half_width,
            mean_delay_littles=mean_number / self.total_rate,
            total_rate=self.total_rate,
        )
