"""Slotted-time simulation (Section 5.2's discrete-time variant).

"The results here also hold asymptotically for slotted time, where the
time axis is not continuous but instead consists of slots of some fixed
duration tau. Arrivals in this model are assumed to come in batches, the
number of arrivals at a slot being a Poisson random variable with mean
lam*tau." The paper argues the average delay differs from the continuous
model by at most tau.

Model implemented: at the start of each slot a Poisson batch of packets is
generated (sources/destinations as in the continuous model); during the
slot every non-empty edge transmits exactly its head-of-line packet, and
all deliveries land simultaneously at the end of the slot. Delays count
whole slots from the generation slot's start to the arrival instant.

Implementation notes:

* only non-empty edges are touched each slot (an active set), so quiet
  networks cost O(arrivals + moves), not O(E), per slot — the same
  lazy-work discipline as the event-driven engine;
* paths come from the shared :mod:`repro.routing.pathcache` arena and the
  packet record stores an ``(arena_offset, length)`` view;
* the whole Poisson batch of a slot is sampled with vectorized kernels
  wherever that reproduces the legacy per-packet RNG draw order exactly
  (see *RNG compatibility* below); ``run(batch_rng=True)`` — the default
  since the engine-registry redesign closed the ROADMAP deprecation
  window — lifts that restriction and batches everything, including the
  per-slot Poisson counts themselves (drawn in 8192-size blocks like the
  event engine's exponential and id blocks). ``batch_rng=False`` keeps
  the legacy-compatible stream.

RNG compatibility
-----------------
The compat kernel (``batch_rng=False``) is bound by the same-seed
bit-identity contract (see :mod:`repro.sim` docs): it must consume the
RNG exactly like the original per-packet loop. NumPy ``Generator`` array draws are stream-identical to
the same number of consecutive scalar draws, so a slot *can* be batched
whenever the legacy draw sequence was a run of same-kind draws:

* uniform sources over all nodes + uniform destinations — the legacy
  ``src, dst, src, dst, ...`` draws are all bounded integers with one
  bound, batched as a single ``integers(0, n, 2k)`` call (the event
  engine's fast-id discipline);
* RNG-free destination laws (fixed permutations) — only the source draws
  touch the RNG and they are consecutive, batched as one call.

Data-dependent laws (hot-spot's conditional uniform draw, the geometric
stopping chain, randomized routing coins interleaved with id draws) keep
the scalar per-packet loop — still path-cached — because no batch can
replay their interleaved stream. ``batch_rng=True`` instead *redefines*
the draw order (Poisson count blocks, then per slot: source batch,
``sample_batch`` destination batch, router coin batch) and is the fast
path for those laws; it is seed-stable and pinned by its own regression
values, but intentionally not bit-compatible with the legacy stream.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.enginecommon import (
    IDENTITY_IDS,
    EngineCommon,
    resolve_saturated_mask,
)
from repro.sim.kernels import SLOTTED_KERNEL, PYTHON_BACKEND, check_backend, get_kernel
from repro.sim.result import SimResult
from repro.util.validation import check_positive


class SlottedNetworkSimulation:
    """Slotted-time FIFO network simulation with unit-slot transmission.

    Parameters mirror :class:`repro.sim.NetworkSimulation`; the slot
    duration ``tau`` scales the batch mean (``total_rate * tau`` packets
    per slot) and the reported times (delays are in the same units as the
    continuous model: slot index times ``tau``). ``use_path_cache`` /
    ``path_cache`` control the shared path-cache arena exactly as in the
    event engine.
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        tau: float = 1.0,
        source_nodes: Sequence[int] | None = None,
        saturated_mask: Sequence[bool] | None = None,
        seed: int = 0,
        use_path_cache: bool = True,
        path_cache=None,
        backend: str = PYTHON_BACKEND,
    ) -> None:
        self.tau = check_positive(tau, "tau")
        self.seed = int(seed)
        # Kernel backend (see repro.sim.kernels): "python" is the
        # bit-identity reference loop, "numpy" the vectorized max-plus
        # kernel (distribution parity, batch_rng=True draw order only).
        self.backend = check_backend(backend)
        # Shared constructor policy (sources, rates, pinned source CDF,
        # fast-id predicate, path cache). Batched id pairs need every node
        # generating at equal rate with the *identity* source order (so
        # drawn ids are node ids) and uniform destinations — then the
        # legacy src/dst draws are one flat run of same-bound integer
        # draws. The event engines only need sorted order; the difference
        # is load-bearing (IDENTITY_IDS here).
        EngineCommon(
            router,
            destinations,
            node_rate,
            source_nodes=source_nodes,
            fast_id_order=IDENTITY_IDS,
            path_cache=path_cache,
            use_path_cache=use_path_cache,
        ).install(self)
        self._sat = resolve_saturated_mask(
            saturated_mask, self.topology.num_edges
        )

    def run(
        self,
        warmup_slots: int,
        horizon_slots: int,
        *,
        delay_batches: int = 32,
        track_maxima: bool = False,
        collect_delays: bool = False,
        batch_rng: bool = True,
    ) -> SimResult:
        """Simulate ``warmup_slots + horizon_slots`` slots, then drain.

        All times in the result are in continuous units (slots * tau).

        Parameters
        ----------
        delay_batches:
            Number of time batches for the delay confidence interval.
        track_maxima:
            Also record the worst per-packet delay of measured packets and
            the longest queue observed during measurement-window slots;
            queues standing when the warmup ends seed the maximum at the
            crossing, mirroring the event engine's warmup-window
            semantics.
        collect_delays:
            Return the raw delay of every measured packet (one float per
            packet, in completion order — zero-hop packets at generation).
        batch_rng:
            Use the fully batched draw order (blocked Poisson counts,
            per-slot source/destination/coin batches). Deterministic per
            seed and statistically identical, but *not* bit-compatible
            with the legacy per-packet stream — see the module docstring.
            **Default True** since the engine-registry redesign (the
            documented behaviour change that re-pinned the slotted golden
            cells); pass ``batch_rng=False`` for the legacy stream, which
            stays pinned by its own ``*_compat`` golden cells.
        """
        if warmup_slots < 0 or horizon_slots <= 0:
            raise ValueError("need warmup_slots >= 0 and horizon_slots > 0")
        return get_kernel(SLOTTED_KERNEL, self.backend)(
            self,
            warmup_slots,
            horizon_slots,
            delay_batches=delay_batches,
            track_maxima=track_maxima,
            collect_delays=collect_delays,
            batch_rng=batch_rng,
        )
