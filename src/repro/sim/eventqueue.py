"""Event-queue structures for the simulators' stochastic-service loops.

The monotone-merge loop (uniform deterministic service) removed the heap
from the engines' common case, but exponential and per-edge deterministic
service still need a priority queue: departure times are not monotone in
push order. This module provides that queue's first structural
alternative to ``heapq`` — a *calendar queue* (bucketed event list) — plus
a thin ``heapq`` adapter so the engines can select either behind one
``push``/``pop`` interface.

Bit-identity contract
---------------------
Both queues pop events in the exact total order ``heapq`` would: event
tuples start with ``(time, seq)`` and ``seq`` is unique per run, so the
tuple order is total and no comparison ever reaches the payload. The
calendar queue preserves that order structurally — events are bucketed by
``floor(time / width)`` (bucket time ranges are disjoint, so all events of
an earlier bucket precede all events of a later one) and each bucket is
sorted on activation, with same-bucket pushes merged in by ``insort``.
Golden fixtures for the exponential and per-edge service cells therefore
pin the calendar loop exactly as they pinned the heap loop.

Why a calendar queue: ``heapq`` costs O(log n) comparisons per push *and*
per pop on one global heap. The calendar queue does an O(1) list append
per push into a future bucket, pays one C-speed sort per bucket on
activation (timsort over a short, mostly-ordered run), and pops by index.
A day heap (a small heap of active bucket indices) skips empty buckets,
so sparse schedules cost nothing to traverse.

Adaptive bucket widths (Brown's rule)
-------------------------------------
The engines seed the width with one mean arrival gap — a good static
guess for the standard model, but the *event* population (not the
arrival rate) is what sets the optimal bucket size, and it drifts with
load and queue depth. ``CalendarQueue`` therefore re-estimates its width
from its own occupancy, following R. Brown's classic calendar-queue
resize rule (CACM 1988): when the pending population doubles past (or
shrinks to a quarter of) the population at the last estimate, sample the
earliest pending events, set the width to three times their average
separation, and rebucket. Resampling happens only at a bucket-activation
boundary (the sorted active run is empty), and rebucketing by *any*
positive width preserves the global ``(time, seq)`` order — bucket
ranges stay disjoint and within-bucket order is restored by the
activation sort — so the adaptive queue pops the exact heap order and
stays pinned by the same golden fixtures and parity tests. Pass
``adaptive=False`` (engine vocabulary ``"calendar-fixed"``) for the
fixed-width behaviour.
"""

from __future__ import annotations

import heapq
from bisect import insort

#: Adaptive resizing triggers (Brown's rule): re-estimate when the
#: pending population leaves ``[last / 4, last * 2]``, never below a
#: floor that keeps tiny runs on the engine-seeded width.
_RESIZE_FLOOR = 512
#: Number of earliest events sampled for the width estimate.
_RESIZE_SAMPLE = 64
#: Brown's multiplier on the sampled average event separation.
_WIDTH_FACTOR = 3.0


class HeapEventQueue:
    """``heapq`` behind the shared push/pop interface (the baseline)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list = []

    def push(self, item) -> None:
        heapq.heappush(self._heap, item)

    def pop(self):
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarQueue:
    """Bucketed event list with ``heapq``-identical pop order.

    Parameters
    ----------
    width:
        Initial bucket width in simulation time. The engines pass one
        mean arrival gap (``1 / total arrival rate``), so a bucket holds
        roughly one route's worth of departure events. Correctness does
        not depend on the choice — only the append/sort balance does.
    adaptive:
        Re-estimate the width from queue occupancy by Brown's rule (the
        default; see the module docstring). ``False`` keeps the initial
        width for the whole run. Outputs are identical either way.

    Notes
    -----
    Items must be tuples ordered by their first two fields ``(time,
    seq)`` with ``seq`` unique, times non-negative, and — as in every
    discrete-event loop — no push may carry a time earlier than the last
    pop. A defensive early-item heap keeps even that violation exact
    rather than silently misordered.
    """

    __slots__ = (
        "_width", "_map", "_days", "_count", "_active_day", "_active",
        "_ai", "_early", "_adaptive", "_resize_hi", "_resize_lo",
        "resize_count",
    )

    def __init__(self, width: float, *, adaptive: bool = True) -> None:
        if not width > 0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        self._width = float(width)
        self._map: dict[int, list] = {}
        self._days: list[int] = []  # min-heap of bucket indices in _map
        self._count = 0
        self._active_day: int | None = None
        self._active: list = []
        self._ai = 0  # pop cursor into the sorted active bucket
        self._early: list = []  # defensive: pushes behind the active day
        self._adaptive = bool(adaptive)
        self._resize_hi = _RESIZE_FLOOR
        self._resize_lo = 0
        self.resize_count = 0  # observability for tests/benchmarks

    @property
    def width(self) -> float:
        """The current bucket width (varies over time when adaptive)."""
        return self._width

    def push(self, item) -> None:
        day = int(item[0] / self._width)
        active_day = self._active_day
        if active_day is not None and day <= active_day:
            if day == active_day:
                # Same-bucket push during processing: merge into the
                # sorted remainder (never before the pop cursor — event
                # times are nondecreasing, ties ordered by the fresh seq).
                insort(self._active, item, lo=self._ai)
            else:
                heapq.heappush(self._early, item)
        else:
            lst = self._map.get(day)
            if lst is None:
                self._map[day] = [item]
                heapq.heappush(self._days, day)
            else:
                lst.append(item)
        self._count += 1

    def _rebucket(self) -> None:
        """Re-estimate the width (Brown's rule) and rebucket all pending
        events. Only called between active buckets, so the global pop
        order is untouched: bucketing by any positive width keeps bucket
        ranges disjoint, and the activation sort restores within-bucket
        order."""
        items: list = list(self._early)
        for lst in self._map.values():
            items.extend(lst)
        n = len(items)
        self._resize_hi = max(_RESIZE_FLOOR, 2 * n)
        self._resize_lo = n // 4
        if n >= 2:
            sample = heapq.nsmallest(min(n, _RESIZE_SAMPLE), items)
            gap = (sample[-1][0] - sample[0][0]) / (len(sample) - 1)
            if gap > 0.0:
                self._width = _WIDTH_FACTOR * gap
        self._map = {}
        for item in items:
            day = int(item[0] / self._width)
            lst = self._map.get(day)
            if lst is None:
                self._map[day] = [item]
            else:
                lst.append(item)
        self._days = list(self._map)
        heapq.heapify(self._days)
        self._early = []
        self._active = []
        self._ai = 0
        self._active_day = None
        self.resize_count += 1

    def pop(self):
        if not self._count:
            raise IndexError("pop from an empty CalendarQueue")
        if self._ai >= len(self._active):
            if not self._days:
                # Only defensively-queued early items remain.
                self._count -= 1
                return heapq.heappop(self._early)
            if self._adaptive and not (
                self._resize_lo <= self._count <= self._resize_hi
            ):
                self._rebucket()
            # Activate the next non-empty bucket.
            day = heapq.heappop(self._days)
            bucket = self._map.pop(day)
            bucket.sort()
            self._active = bucket
            self._ai = 0
            self._active_day = day
        if self._early and self._early[0] < self._active[self._ai]:
            self._count -= 1
            return heapq.heappop(self._early)
        item = self._active[self._ai]
        self._ai += 1
        self._count -= 1
        if self._ai >= len(self._active):
            # Bucket exhausted: drop the references now (the list may be
            # large) but keep _active_day so same-day pushes stay exact.
            self._active = []
            self._ai = 0
        return item

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


#: Engine constructor vocabulary for selecting the stochastic-service
#: event queue (the uniform-deterministic merge loop bypasses all of
#: them): the adaptive calendar (default), the fixed-width calendar, and
#: the binary heap. All three pop the identical (time, seq) order.
CALENDAR, CALENDAR_FIXED, HEAP = "calendar", "calendar-fixed", "heap"
QUEUE_KINDS = (CALENDAR, CALENDAR_FIXED, HEAP)


def make_event_queue(kind: str, *, width: float):
    """Build the requested queue; ``width`` only matters for the calendars."""
    if kind == CALENDAR:
        return CalendarQueue(width)
    if kind == CALENDAR_FIXED:
        return CalendarQueue(width, adaptive=False)
    if kind == HEAP:
        return HeapEventQueue()
    raise ValueError(
        f"event_queue must be one of {'/'.join(QUEUE_KINDS)}, got {kind!r}"
    )
