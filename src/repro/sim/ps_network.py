"""Processor-sharing network simulation (the Theorem 5 comparator).

Under PS, "all customers queued at a server receive an equal proportion of
the available service simultaneously": with ``k`` customers present at an
edge with rate ``phi``, each one's remaining work drains at ``phi / k``.
Every customer needs one unit of work (the paper's unit service times).

Theorem 1/5 asserts the PS network's total occupancy stochastically
dominates the FIFO network's on every sample path family — and its
equilibrium is the product-form/Jackson law. The dominance experiment
simulates both and checks ``E[N_FIFO] <= E[N_PS]`` plus the distributional
ordering.

Implementation: the classic virtual-completion-event scheme. Each queue
keeps its customers' remaining work, a ``last update`` timestamp and a
version counter; arrival or departure at the queue re-linearises the drain
and re-schedules the (single) next-completion event, bumping the version so
stale entries are skipped on pop. Cost is O(k) per queue event, which
is fine at the modest sizes the PS comparisons run at (its purpose is
validation, not Table-scale statistics). Because completions are
re-planned (truly stochastic event times), this engine needs a priority
queue — the merge loop does not apply — and since PR 6 that queue is the
pluggable :mod:`repro.sim.eventqueue` structure the FIFO/rushed/finite
stochastic loops use (``event_queue="calendar"`` by default; every kind
pops the identical ``(time, seq)`` order, so outputs are bit-identical
and the PS golden cells pin the calendar loop exactly as they pinned the
heap). It shares the rest of the hot-path
architecture: paths come from the shared :mod:`repro.routing.pathcache`
arena, packet records store ``(arena_offset, length)`` views, and the
source draw uses the pinned CDF with ``side='right'`` so a boundary draw
can never select a zero-rate source. The per-packet RNG draw order is
unchanged from the pre-cache engine, and the PS golden cells in
``tests/golden/`` pin the outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.base import Router
from repro.routing.destinations import DestinationDistribution
from repro.sim.enginecommon import (
    NO_FAST_IDS,
    EngineCommon,
    resolve_service_rates,
)
from repro.sim.eventqueue import CALENDAR, QUEUE_KINDS, make_event_queue
from repro.sim.measurement import TimeBatchAccumulator
from repro.sim.result import SimResult
from repro.sim.rng import make_rng
from repro.util.validation import check_positive


class PSNetworkSimulation:
    """Event-driven processor-sharing network simulation.

    Parameters mirror :class:`repro.sim.NetworkSimulation` (service is
    always unit-work PS; ``use_path_cache`` / ``path_cache`` control the
    shared path-cache arena exactly as there, and ``event_queue`` selects
    the completion-event priority structure from
    :data:`repro.sim.eventqueue.QUEUE_KINDS` — bit-identical outputs for
    every kind).
    """

    def __init__(
        self,
        router: Router,
        destinations: DestinationDistribution,
        node_rate: float | Sequence[float],
        *,
        service_rates: float | Sequence[float] = 1.0,
        source_nodes: Sequence[int] | None = None,
        seed: int = 0,
        use_path_cache: bool = True,
        path_cache=None,
        event_queue: str = CALENDAR,
    ) -> None:
        self.seed = int(seed)
        if event_queue not in QUEUE_KINDS:
            raise ValueError(
                f"event_queue must be one of {'/'.join(QUEUE_KINDS)}, "
                f"got {event_queue!r}"
            )
        self.event_queue = event_queue
        phi = resolve_service_rates(service_rates, router.topology.num_edges)
        self._phi = phi.tolist()
        # Shared constructor policy. PS has no fast-id block draw
        # (NO_FAST_IDS): every source is drawn through the pinned CDF
        # with side='right', the boundary-safe discipline.
        EngineCommon(
            router,
            destinations,
            node_rate,
            source_nodes=source_nodes,
            fast_id_order=NO_FAST_IDS,
            path_cache=path_cache,
            use_path_cache=use_path_cache,
        ).install(self)

    def run(
        self,
        warmup: float,
        horizon: float,
        *,
        collect_delays: bool = False,
        track_number_distribution: bool = False,
        delay_batches: int = 32,
    ) -> SimResult:
        """Simulate ``warmup + horizon`` time units and drain (see
        :meth:`repro.sim.NetworkSimulation.run` for parameter meanings)."""
        check_positive(horizon, "horizon")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        rng = make_rng(self.seed, engine="ps")
        t_end = warmup + horizon
        num_nodes = self.topology.num_nodes
        num_edges = self.topology.num_edges
        phi = self._phi

        # Path cache bindings (see NetworkSimulation.run).
        cache = self.path_cache
        arena = cache.arena.edges  # extended in place; safe to bind once
        if cache.consumes_rng:
            det_get = None
            det_build = None
            sample_offlen = cache.sample_offlen
        else:
            det_get = cache.table.get
            det_build = cache.ensure
            sample_offlen = None

        # Per-queue PS state.
        works: list[list[float]] = [[] for _ in range(num_edges)]
        pkts: list[list[list]] = [[] for _ in range(num_edges)]
        last_up = [0.0] * num_edges
        version = [0] * num_edges

        # All pushes carry times >= the current event time (completions
        # are re-planned forward, arrivals add an exponential gap), so the
        # calendar queue's monotone-push contract holds.
        evq = make_event_queue(self.event_queue, width=1.0 / self.total_rate)
        seq = 0
        push = evq.push
        pop = evq.pop
        searchsorted = np.searchsorted
        sources = self.source_nodes
        source_cdf = self._source_cdf
        dest_sample = self.destinations.sample

        in_system = 0
        remaining = 0
        int_n = 0.0
        int_r = 0.0
        last_t = 0.0
        generated = completed = zero_hop = 0
        in_flight_at_horizon = 0
        delay_acc = TimeBatchAccumulator(warmup, t_end, delay_batches)
        delays: list[float] | None = [] if collect_delays else None
        ndist: dict[int, float] | None = {} if track_number_distribution else None

        def elapse(e: int, t: float) -> None:
            """Drain remaining works at queue e up to time t."""
            k = len(works[e])
            if k:
                dt = t - last_up[e]
                if dt > 0.0:
                    rate = phi[e] / k
                    w = works[e]
                    for i in range(k):
                        w[i] -= dt * rate
            last_up[e] = t

        def reschedule(e: int, t: float) -> None:
            """Re-plan queue e's next completion after a state change."""
            nonlocal seq
            version[e] += 1
            k = len(works[e])
            if k:
                t_next = t + min(works[e]) * k / phi[e]
                push((t_next, seq, e, version[e]))
                seq += 1

        def enqueue(e: int, t: float, pkt: list) -> None:
            elapse(e, t)
            works[e].append(1.0)  # unit work per customer
            pkts[e].append(pkt)
            reschedule(e, t)

        # PS replans one exponential arrival gap per event; the scalar
        # draw order *is* the engine's pinned bit-identity stream (golden
        # ps_* cells), so the blocked-draw convention does not apply.
        push((rng.exponential(1.0 / self.total_rate), seq, -1, 0))  # replint: disable=rng-discipline
        seq += 1

        draining = False
        while evq:
            t, _s, e, ver = pop()
            if t >= t_end and not draining:
                draining = True
                in_flight_at_horizon = in_system
                lo = last_t if last_t > warmup else warmup
                if t_end > lo:
                    dt = t_end - lo
                    int_n += in_system * dt
                    int_r += remaining * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t_end
            if not draining and t > warmup:
                lo = last_t if last_t > warmup else warmup
                dt = t - lo
                if dt > 0.0:
                    int_n += in_system * dt
                    int_r += remaining * dt
                    if ndist is not None:
                        ndist[in_system] = ndist.get(in_system, 0.0) + dt
                last_t = t
            elif not draining:
                last_t = t

            if e < 0:
                # ----- external arrival -----
                if draining:
                    continue
                # side="right" so a draw landing exactly on a CDF boundary
                # (e.g. u = 0.0 with a leading zero-rate source) never
                # selects a zero-rate source.
                src = sources[
                    int(searchsorted(source_cdf, rng.random(), side="right"))
                ]
                dst = dest_sample(src, rng)
                measured = t >= warmup
                if measured:
                    generated += 1
                if src == dst:
                    if measured:
                        zero_hop += 1
                        completed += 1
                        delay_acc.add(t, 0.0)
                        if delays is not None:
                            delays.append(0.0)
                else:
                    if det_get is not None:
                        ol = det_get(src * num_nodes + dst)
                        if ol is None:
                            ol = det_build(src, dst)
                        off, ln = ol
                    else:
                        off, ln = sample_offlen(src, dst, rng)
                    in_system += 1
                    remaining += ln
                    # packet record: [birth, arena offset, length, hops
                    # done, measured]
                    # (fresh per-packet record — mutated in place)
                    enqueue(arena[off], t, [t, off, ln, 0, measured])  # replint: disable=hot-loop-alloc
                # Same pinned per-event scalar stream as the initial draw.
                push((t + rng.exponential(1.0 / self.total_rate), seq, -1, 0))  # replint: disable=rng-discipline
                seq += 1
            else:
                # ----- tentative completion at queue e -----
                if ver != version[e]:
                    continue  # stale event
                elapse(e, t)
                # The minimal-work customer is the one completing.
                w = works[e]
                idx = min(range(len(w)), key=w.__getitem__)
                w.pop(idx)
                pkt = pkts[e].pop(idx)
                remaining -= 1
                hop = pkt[3] + 1
                pkt[3] = hop
                if hop == pkt[2]:
                    in_system -= 1
                    if pkt[4]:
                        completed += 1
                        d = t - pkt[0]
                        delay_acc.add(pkt[0], d)
                        if delays is not None:
                            delays.append(d)
                else:
                    enqueue(arena[pkt[1] + hop], t, pkt)
                reschedule(e, t)

        if last_t < t_end:
            lo = last_t if last_t > warmup else warmup
            dt = t_end - lo
            int_n += in_system * dt
            int_r += remaining * dt
            if ndist is not None:
                ndist[in_system] = ndist.get(in_system, 0.0) + dt

        mean_number = int_n / horizon
        summary = delay_acc.summary()
        if ndist is not None:
            total_dt = sum(ndist.values())
            ndist = {k: v / total_dt for k, v in sorted(ndist.items())}
        return SimResult(
            warmup=warmup,
            horizon=horizon,
            seed=self.seed,
            generated=generated,
            completed=completed,
            zero_hop=zero_hop,
            in_flight_at_end=in_flight_at_horizon,
            mean_number=mean_number,
            mean_remaining=int_r / horizon,
            mean_remaining_saturated=float("nan"),
            mean_delay=summary.mean,
            delay_half_width=summary.half_width,
            mean_delay_littles=mean_number / self.total_rate,
            total_rate=self.total_rate,
            delays=np.asarray(delays) if delays is not None else None,
            number_distribution=ndist,
        )
