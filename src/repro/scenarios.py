"""Scenario registry: named traffic workloads for the replication engine.

A *scenario* bundles the three structural choices of a simulation cell —
topology, routing scheme, destination law — behind a name, so experiments,
the CLI and benchmarks can say ``CellSpec(scenario="hotspot", n=8,
rho=0.8)`` instead of hand-wiring constructors. Each scenario also knows
how to *calibrate* a target network load ``rho = max_e lam_e / phi_e`` to
a per-node rate: the standard model uses the paper's closed forms (and
honours the Table I ``"table1"`` convention), every other workload is
calibrated exactly by the generic traffic solver
:func:`repro.core.rates.edge_rates_from_routing`, which works because all
destination laws expose exact ``pmf`` views.

Built-in scenarios
------------------
``uniform``
    The paper's standard model: n-by-n mesh, row-first greedy routing,
    uniform destinations.
``randomized``
    Section 6's randomized greedy (fair row/column-first coin) on the
    uniform workload.
``hotspot``
    Uniform mesh workload with extra probability mass ``h`` (default 0.25)
    on a hot node (default: the center of the mesh).
``transpose``
    Fixed-permutation transpose traffic ``(i, j) -> (j, i)`` on the mesh.
``bitreversal``
    Bit-reversal permutation traffic on the ``n``-dimensional hypercube
    under canonical-order greedy routing (here ``n`` is the dimension).
``geometric``
    Section 5.2's distance-biased law (stop parameter ``stop``, default
    0.5) on the mesh.
``torus``
    Uniform traffic on the n-by-n torus under shortest-way greedy routing
    (the Section 6 open-problem topology).
``single``
    One isolated M/*/1 queue: on the 2x2 mesh only node 0 generates and
    always targets node 1, so all traffic crosses the single edge
    ``0 -> 1`` at rate exactly ``rho`` — the reference cell the
    validation harness (:mod:`repro.validation`) compares against the
    M/M/1 / M/D/1 / M/M/1/K closed forms.

Adding a scenario is one :func:`register` call; anything registered is
immediately usable from ``python -m repro simulate --scenario <name>``,
on any simulator in the engine registry (:mod:`repro.sim.registry`) —
the scenario names the *workload*, the engine names the *simulator*, and
:class:`~repro.sim.replication.CellSpec` crosses the two declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.rates import array_edge_rates, edge_rates_from_routing, lambda_for_load
from repro.core.saturation import saturated_edge_mask
from repro.routing.base import Router
from repro.routing.destinations import (
    DestinationDistribution,
    GeometricStopDestinations,
    HotSpotDestinations,
    PermutationDestinations,
    UniformDestinations,
)
from repro.routing.greedy import GreedyArrayRouter
from repro.routing.hypercube_greedy import GreedyHypercubeRouter
from repro.routing.randomized_greedy import RandomizedGreedyArrayRouter
from repro.routing.torus_greedy import GreedyTorusRouter
from repro.sim.replication import CellSpec
from repro.topology.array_mesh import ArrayMesh
from repro.topology.hypercube import Hypercube
from repro.topology.torus import Torus


@dataclass(frozen=True)
class ScenarioNetwork:
    """The concrete network a scenario builds: router (carrying the
    topology), destination law, and optionally a source subset."""

    router: Router
    destinations: DestinationDistribution
    source_nodes: list[int] | None = None


@dataclass(frozen=True)
class Scenario:
    """A registry entry: a builder plus calibration metadata.

    ``standard_mesh`` marks scenarios whose rate map is the paper's
    Theorem 6 closed form (uniform traffic on the mesh under a greedy
    order), which both enables the ``"table1"`` load convention and keeps
    Table I/III calibration bit-identical to the pre-engine code path.
    ``bounds_apply`` marks the one scheme the paper's Theorem 7 upper
    bound covers: the randomized mixture shares the standard rate map but
    is not layered, so the bound sandwich must not be asserted for it.
    """

    name: str
    description: str
    build: Callable[..., ScenarioNetwork]
    standard_mesh: bool = False
    bounds_apply: bool = False


_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (name must be unused)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown scenario {name!r} (known: {known})") from None


def available_scenarios() -> list[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def build_network(name: str, n: int, **params) -> ScenarioNetwork:
    """Build the named scenario's network at size ``n``."""
    return get_scenario(name).build(n, **params)


def resolve_cell(spec: CellSpec) -> tuple[float | tuple, np.ndarray | None]:
    """Resolve a :class:`CellSpec` to ``(node_rate, saturated_mask)``.

    The explicit ``spec.node_rate`` wins when given; otherwise
    ``spec.rho`` is calibrated through the scenario (closed forms for the
    standard mesh honouring ``spec.convention``, the generic traffic
    solver for everything else). The mask is ``None`` unless
    ``spec.track_saturated``.
    """
    scenario = get_scenario(spec.scenario)
    net = scenario.build(spec.n, **spec.params_dict)
    unit = None  # solver rates at node_rate = 1, reusable: rates are linear
    if spec.node_rate is not None:
        node_rate = spec.node_rate
    elif scenario.standard_mesh:
        node_rate = lambda_for_load(spec.n, spec.rho, spec.convention)
    else:
        unit = edge_rates_from_routing(
            net.router, net.destinations, 1.0, source_nodes=net.source_nodes
        )
        peak = float(unit.max())
        if peak <= 0:
            raise ValueError(
                f"scenario {spec.scenario!r} carries no traffic at n={spec.n}"
            )
        node_rate = spec.rho / peak
    if not spec.track_saturated:
        return node_rate, None
    if scenario.standard_mesh and np.isscalar(node_rate):
        rates = array_edge_rates(net.router.topology, node_rate)
    elif unit is not None:
        rates = unit * node_rate
    else:
        rates = edge_rates_from_routing(
            net.router, net.destinations, node_rate, source_nodes=net.source_nodes
        )
    return node_rate, saturated_edge_mask(rates)


# ----------------------------------------------------------------------
# Built-in scenarios.


def _uniform(n: int) -> ScenarioNetwork:
    mesh = ArrayMesh(n)
    return ScenarioNetwork(GreedyArrayRouter(mesh), UniformDestinations(mesh.num_nodes))


def _randomized(n: int, p: float = 0.5) -> ScenarioNetwork:
    mesh = ArrayMesh(n)
    return ScenarioNetwork(
        RandomizedGreedyArrayRouter(mesh, row_first_probability=p),
        UniformDestinations(mesh.num_nodes),
    )


def _hotspot(n: int, h: float = 0.25, hot_node: int | None = None) -> ScenarioNetwork:
    mesh = ArrayMesh(n)
    hot = mesh.node_id(n // 2, n // 2) if hot_node is None else int(hot_node)
    return ScenarioNetwork(
        GreedyArrayRouter(mesh),
        HotSpotDestinations(mesh.num_nodes, hot_node=hot, h=h),
    )


def _transpose(n: int) -> ScenarioNetwork:
    mesh = ArrayMesh(n)
    return ScenarioNetwork(
        GreedyArrayRouter(mesh), PermutationDestinations.transpose(mesh)
    )


def _bitreversal(n: int) -> ScenarioNetwork:
    cube = Hypercube(n)
    return ScenarioNetwork(
        GreedyHypercubeRouter(cube),
        PermutationDestinations.bit_reversal(cube.num_nodes),
    )


def _geometric(n: int, stop: float = 0.5) -> ScenarioNetwork:
    mesh = ArrayMesh(n)
    return ScenarioNetwork(
        GreedyArrayRouter(mesh), GeometricStopDestinations(mesh, stop=stop)
    )


def _single(n: int) -> ScenarioNetwork:
    # The smallest mesh that isolates one queue: node 0 is the only
    # source and always targets its row neighbour 1, so every packet
    # crosses exactly the edge 0 -> 1 and that edge is an M/*/1 queue in
    # isolation. The permutation is an involution (0<->1, 2<->3) so the
    # destination law stays a valid full permutation; the peak unit-rate
    # edge load is 1, hence the generic calibration gives node_rate = rho
    # exactly and the simulated queue has arrival rate rho, service rate
    # 1 — directly comparable to the M/M/1, M/D/1 and M/M/1/K closed
    # forms of repro.queueing (the validation harness's reference cells).
    if n != 2:
        raise ValueError(f"the single-queue scenario is fixed at n=2, got n={n}")
    mesh = ArrayMesh(2)
    return ScenarioNetwork(
        GreedyArrayRouter(mesh),
        PermutationDestinations([1, 0, 3, 2]),
        source_nodes=[0],
    )


def _torus(n: int) -> ScenarioNetwork:
    torus = Torus(n)
    return ScenarioNetwork(
        GreedyTorusRouter(torus), UniformDestinations(torus.num_nodes)
    )


register(
    Scenario(
        "uniform",
        "standard model: mesh, row-first greedy, uniform destinations",
        _uniform,
        standard_mesh=True,
        bounds_apply=True,
    )
)
register(
    Scenario(
        "randomized",
        "Section 6 randomized greedy (row/column coin) on uniform traffic",
        _randomized,
        standard_mesh=True,
    )
)
register(
    Scenario(
        "hotspot",
        "uniform mesh traffic with extra mass h on a hot node",
        _hotspot,
    )
)
register(
    Scenario(
        "transpose",
        "fixed-permutation transpose traffic (i,j) -> (j,i) on the mesh",
        _transpose,
    )
)
register(
    Scenario(
        "bitreversal",
        "bit-reversal permutation on the n-dimensional hypercube",
        _bitreversal,
    )
)
register(
    Scenario(
        "geometric",
        "Section 5.2 distance-biased destinations on the mesh",
        _geometric,
    )
)
register(
    Scenario(
        "single",
        "one isolated M/*/1 queue (2x2 mesh, node 0 -> 1 only) for "
        "closed-form validation cells",
        _single,
    )
)
register(
    Scenario(
        "torus",
        "uniform traffic on the torus under shortest-way greedy routing",
        _torus,
    )
)
