"""Shared utilities: validation, table rendering, and parallel fan-out.

These helpers are deliberately dependency-light; every other subpackage may
import from :mod:`repro.util` but :mod:`repro.util` imports nothing from the
rest of the library.
"""

from repro.util.validation import (
    check_positive,
    check_probability,
    check_load,
    check_side,
    check_in_range,
)
from repro.util.tables import Table, format_float
from repro.util.parallel import pmap
from repro.util.workerpool import (
    WorkerPool,
    get_pool,
    resolve_processes,
    shutdown_pools,
)

__all__ = [
    "check_positive",
    "check_probability",
    "check_load",
    "check_side",
    "check_in_range",
    "Table",
    "format_float",
    "pmap",
    "WorkerPool",
    "get_pool",
    "resolve_processes",
    "shutdown_pools",
]
