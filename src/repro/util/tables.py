"""Minimal fixed-width text tables for experiment reports.

The experiment harness regenerates the paper's tables as monospace text so
they can be diffed against the published values in EXPERIMENTS.md; this
module is the single formatting path used by every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def format_float(x: float, digits: int = 3) -> str:
    """Render a float with ``digits`` decimals; pass strings through."""
    if isinstance(x, str):
        return x
    if x is None:
        return "-"
    return f"{x:.{digits}f}"


@dataclass
class Table:
    """A fixed-width table with a title, column headers, and rows.

    Examples
    --------
    >>> t = Table(title="Demo", headers=["n", "T"])
    >>> t.add_row([5, 3.256])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Demo
    ...
    """

    title: str
    headers: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)
    float_digits: int = 3

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row, formatting floats to :attr:`float_digits` places."""
        formatted: list[str] = []
        for cell in cells:
            if isinstance(cell, float):
                formatted.append(format_float(cell, self.float_digits))
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells but table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def render(self) -> str:
        """Render the table as a monospace string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for k, cell in enumerate(row):
                widths[k] = max(widths[k], len(cell))
        sep = "  "
        lines = [self.title] if self.title else []
        lines.append(sep.join(h.rjust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep.join("-" * w for w in widths))
        for row in self.rows:
            lines.append(sep.join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
