"""Persistent warm worker pools for the replication fan-out.

The old fan-out (``pmap`` before this module) created a fresh
``multiprocessing.Pool`` for every call: each ``ReplicationEngine.run``
paid pool start-up, and a sweep of hundreds of cells paid it hundreds of
times, cold workers every time. This module keeps pools *warm*:

* :class:`WorkerPool` — a lazily created, reusable process pool. The
  underlying ``multiprocessing.Pool`` is built on first parallel use and
  then reused for every subsequent ``map`` / ``imap_unordered`` call, so
  worker-local state (the replication layer's per-cell network memo, the
  attached shared-memory snapshots of :mod:`repro.sim.sharedcells`)
  survives across calls. Context-managed; also usable as a long-lived
  module-level pool.
* :func:`get_pool` — the shared warm-pool registry, keyed by worker
  count. ``pmap`` and ``ReplicationEngine`` draw from here, so one warm
  pool serves a whole sweep. All registered pools are shut down at
  interpreter exit (and on demand via :func:`shutdown_pools`).
* :func:`resolve_processes` — the one place the worker count is decided:
  an explicit argument wins, else the ``REPRO_PROCESSES`` environment
  variable, else ``os.cpu_count()``. Inside a daemonic pool worker the
  answer is always 1 (nested pools are forbidden by multiprocessing, so
  nested fan-outs degrade to serial instead of crashing).

Environment
-----------
``REPRO_PROCESSES``
    Default worker count for every pool and ``pmap`` call that does not
    pass ``processes`` explicitly. Useful to pin CI to a known
    parallelism (``REPRO_PROCESSES=2``) or to force the serial path on
    single-core machines (``REPRO_PROCESSES=1``). Must be a positive
    integer; invalid values are ignored with the cpu-count fallback.

Serial calls (one worker, or at most one work item) never touch a pool:
they run in-process, bit-identical to the parallel path and debuggable,
exactly like the historical ``pmap`` contract.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
# Submodule import so the `mp.pool.Pool` annotations below resolve for
# the type checker; `mp` is the name the code uses.
import multiprocessing.pool  # replint: disable=dead-import
import os
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Start method: fork on POSIX (workers inherit the warm parent state —
#: imported modules, registries — for free), spawn where fork is absent.
_START_METHOD = "spawn" if os.name == "nt" else "fork"


def default_processes() -> int:
    """Number of worker processes to use by default (``cpu_count``, >=1)."""
    try:
        return max(1, os.cpu_count() or 1)
    except Exception:  # pragma: no cover - platform oddity
        return 1


def resolve_processes(processes: int | None = None) -> int:
    """Resolve a worker count: argument > ``REPRO_PROCESSES`` > cpu count.

    Returns 1 inside a daemonic pool worker regardless of the inputs:
    multiprocessing forbids daemonic processes from having children, so a
    nested fan-out must degrade to the (equivalent) serial path.
    """
    if mp.current_process().daemon:
        return 1
    if processes is not None:
        return max(1, int(processes))
    env = os.environ.get("REPRO_PROCESSES")
    if env:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return default_processes()


class WorkerPool:
    """A lazily created, reusable process pool.

    Parameters
    ----------
    processes:
        Worker count (resolved via :func:`resolve_processes`, so ``None``
        honours ``REPRO_PROCESSES``). A one-worker pool never creates OS
        processes — every call runs serially in-process.

    The pool is created on the first parallel call and reused afterwards;
    worker processes stay alive (warm imports, warm per-cell memos,
    attached shared-memory segments) until :meth:`shutdown` or interpreter
    exit. Safe to use as a context manager for scoped lifetimes.
    """

    def __init__(self, processes: int | None = None) -> None:
        self.processes = resolve_processes(processes)
        self._pool: mp.pool.Pool | None = None

    # -- lifecycle -----------------------------------------------------
    def _ensure_pool(self) -> mp.pool.Pool:
        if self._pool is None:
            ctx = mp.get_context(_START_METHOD)
            self._pool = ctx.Pool(processes=self.processes)
        return self._pool

    @property
    def started(self) -> bool:
        """Whether the underlying OS pool has been created yet."""
        return self._pool is not None

    def shutdown(self) -> None:
        """Terminate the workers (idempotent). The pool may be used again
        afterwards — the next parallel call starts fresh workers."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- mapping -------------------------------------------------------
    def map(
        self,
        func: Callable[[T], R],
        items: Iterable[T],
        *,
        chunksize: int = 1,
    ) -> list[R]:
        """Ordered map (the ``pmap`` semantics), serial for trivial input."""
        work: Sequence[T] = list(items)
        if self.processes == 1 or len(work) <= 1:
            return [func(item) for item in work]
        return self._ensure_pool().map(func, work, chunksize=chunksize)

    def imap_unordered(
        self, func: Callable[[T], R], items: Iterable[T]
    ) -> Iterator[R]:
        """Stream results as workers finish them (arbitrary order).

        Callers that need input order tag their work items. The serial
        path yields in input order — a valid (and bit-identical)
        completion order.
        """
        work: Sequence[T] = list(items)
        if self.processes == 1 or len(work) <= 1:
            return (func(item) for item in work)
        return self._ensure_pool().imap_unordered(func, work)


#: Shared warm pools, keyed by worker count. One pool per distinct count
#: is enough: the replication fan-out and the experiment grids all ask
#: for "the machine's parallelism" and land on the same key.
_POOLS: dict[int, WorkerPool] = {}


def get_pool(processes: int | None = None) -> WorkerPool:
    """The shared warm pool for a worker count (created lazily, reused).

    Note the fork caveat: workers snapshot the parent at pool creation.
    Global mutations made *after* the pool first runs (e.g. registering a
    new scenario or engine) are invisible to the warm workers — call
    :func:`shutdown_pools` to force fresh workers after such mutations.
    """
    nproc = resolve_processes(processes)
    pool = _POOLS.get(nproc)
    if pool is None:
        pool = _POOLS[nproc] = WorkerPool(nproc)
    return pool


def shutdown_pools() -> None:
    """Shut down every shared warm pool (they restart lazily on demand)."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)
