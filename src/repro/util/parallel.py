"""Process-pool fan-out for independent simulation cells.

Reproducing the paper's tables means running many independent (n, rho, seed)
simulation cells; each cell is a pure function of its arguments, so the
natural HPC idiom is an embarrassingly-parallel map over a process pool.
``pmap`` wraps :mod:`multiprocessing` with sensible defaults (spawn-safe
top-level callables, chunk size 1 because cells are long and heterogeneous)
and degrades gracefully to a serial map for ``processes=1`` or tiny inputs,
which also keeps coverage tools and debuggers usable.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_processes() -> int:
    """Number of worker processes to use by default (``cpu_count``, >=1)."""
    try:
        return max(1, os.cpu_count() or 1)
    except Exception:  # pragma: no cover - platform oddity
        return 1


def pmap(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    processes: int | None = None,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across a process pool.

    Parameters
    ----------
    func:
        A picklable top-level callable (required for multiprocessing).
    items:
        Work items; consumed eagerly so the total is known up front.
    processes:
        Worker count. ``None`` uses :func:`default_processes`; ``1`` (or a
        single work item) runs serially in-process, which is exactly
        equivalent but debuggable.

    Returns
    -------
    list
        Results in input order (ordered ``map`` semantics, unlike
        ``imap_unordered``), so callers can zip results back onto inputs.
    """
    work: Sequence[T] = list(items)
    nproc = default_processes() if processes is None else max(1, int(processes))
    if nproc == 1 or len(work) <= 1:
        return [func(item) for item in work]
    ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
    with ctx.Pool(processes=min(nproc, len(work))) as pool:
        return pool.map(func, work, chunksize=1)
