"""Process-pool fan-out for independent simulation cells.

Reproducing the paper's tables means running many independent (n, rho, seed)
simulation cells; each cell is a pure function of its arguments, so the
natural HPC idiom is an embarrassingly-parallel map over a process pool.
``pmap`` is now a thin wrapper over the *persistent warm pools* of
:mod:`repro.util.workerpool`: the first parallel call starts the workers,
every later call with the same worker count reuses them (warm imports,
warm per-cell memos, attached shared-memory snapshots), and serial calls
(``processes=1`` or a single work item) run in-process exactly as before,
which also keeps coverage tools and debuggers usable.

The default worker count honours the ``REPRO_PROCESSES`` environment
variable (see :func:`repro.util.workerpool.resolve_processes`) — useful
to pin CI parallelism or force the serial path on single-core machines.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from repro.util.workerpool import default_processes, get_pool, resolve_processes

__all__ = ["default_processes", "pmap", "resolve_processes"]

T = TypeVar("T")
R = TypeVar("R")


def pmap(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    processes: int | None = None,
) -> list[R]:
    """Map ``func`` over ``items``, optionally across a warm process pool.

    Parameters
    ----------
    func:
        A picklable top-level callable (required for multiprocessing).
    items:
        Work items; consumed eagerly so the total is known up front.
    processes:
        Worker count. ``None`` resolves via ``REPRO_PROCESSES`` then
        :func:`~repro.util.workerpool.default_processes`; ``1`` (or a
        single work item) runs serially in-process, which is exactly
        equivalent but debuggable.

    Returns
    -------
    list
        Results in input order (ordered ``map`` semantics, unlike
        ``imap_unordered``), so callers can zip results back onto inputs.
        Chunk size stays 1 because cells are long and heterogeneous.
    """
    return get_pool(resolve_processes(processes)).map(func, items, chunksize=1)
