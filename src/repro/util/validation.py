"""Argument-validation helpers shared across the public API.

All validators raise :class:`ValueError` (or :class:`TypeError` for
non-numeric input) with messages that name the offending parameter, so API
misuse surfaces at the call boundary instead of deep inside the simulator
or an analytic formula.
"""

from __future__ import annotations

from numbers import Real

import numpy as np


def _as_real(value: object, name: str) -> float:
    """Coerce ``value`` to ``float``, raising ``TypeError`` if non-numeric."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    return float(value)


def check_positive(value: float, name: str = "value", *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict).

    Parameters
    ----------
    value:
        The number to validate.
    name:
        Parameter name used in error messages.
    strict:
        If true (default) require ``value > 0``; otherwise ``value >= 0``.

    Returns
    -------
    float
        The validated value, coerced to ``float``.
    """
    x = _as_real(value, name)
    if strict and not x > 0:
        raise ValueError(f"{name} must be > 0, got {x}")
    if not strict and x < 0:
        raise ValueError(f"{name} must be >= 0, got {x}")
    return x


def check_node_rates(rates, count: int, name: str = "node_rate"):
    """Validate a per-source rate vector: shape ``(count,)``, every entry
    non-negative, and a positive total.

    Shared by the event-driven and slotted engines so both reject the same
    malformed inputs (a negative entry used to slip past the slotted
    engine's total-only check). Returns the validated ``float`` array.
    """
    arr = np.asarray(rates, dtype=float)
    if arr.shape != (count,):
        raise ValueError(f"{name} sequence must match source_nodes")
    if np.any(arr < 0) or not arr.sum() > 0:
        raise ValueError(f"{name} entries must be non-negative with positive sum")
    return arr


def pinned_cdf(weights):
    """Normalised cumulative distribution with a pinned top.

    The CDF is set to exactly 1.0 from the last positive weight onward,
    so a ``searchsorted(cdf, u, side='right')`` draw (i) stays in range
    even when rounding leaves the cumulative sum at ``1 - ulp``, and
    (ii) can never hand the top sliver to a zero-weight trailing entry.
    Shared by both simulation engines' source draw and by
    :class:`~repro.routing.destinations.MatrixDestinations`.
    """
    w = np.asarray(weights, dtype=float)
    cdf = np.cumsum(w) / w.sum()
    last = len(w) - 1 - int(np.argmax(w[::-1] > 0))
    cdf[last:] = 1.0
    return cdf


def check_probability(value: float, name: str = "p", *, open_interval: bool = False) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) if ``open_interval``)."""
    x = _as_real(value, name)
    if open_interval:
        if not 0.0 < x < 1.0:
            raise ValueError(f"{name} must lie strictly inside (0, 1), got {x}")
    elif not 0.0 <= x <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {x}")
    return x


def check_load(value: float, name: str = "rho") -> float:
    """Validate a queueing load: ``0 <= rho < 1`` (stability requirement)."""
    x = _as_real(value, name)
    if not 0.0 <= x < 1.0:
        raise ValueError(
            f"{name} must satisfy 0 <= {name} < 1 for a stable system, got {x}"
        )
    return x


def check_side(n: int, name: str = "n", *, minimum: int = 2) -> int:
    """Validate an array side length (integer, at least ``minimum``)."""
    if isinstance(n, bool) or not isinstance(n, int):
        raise TypeError(f"{name} must be an int, got {n!r}")
    if n < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {n}")
    return n


def check_in_range(
    value: float,
    low: float,
    high: float,
    name: str = "value",
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (or strict inequalities)."""
    x = _as_real(value, name)
    if inclusive:
        if not low <= x <= high:
            raise ValueError(f"{name} must lie in [{low}, {high}], got {x}")
    elif not low < x < high:
        raise ValueError(f"{name} must lie in ({low}, {high}), got {x}")
    return x
