"""Directed network topologies used by the paper and its extensions.

Every topology exposes the same flat, array-backed interface
(:class:`~repro.topology.base.Topology`): integer node ids, integer edge
ids, and NumPy lookup tables. The simulator, the routing layer, and the
analytic traffic solver all address edges purely by id, so they are
topology-agnostic.

The paper's primary object is the :class:`ArrayMesh` (an n-by-n array with
a pair of directed edges between each neighbouring pair of nodes); the
torus, hypercube, butterfly, and linear array support the extensions in
Sections 4.5, 5, and 6.
"""

from repro.topology.base import Topology
from repro.topology.array_mesh import ArrayMesh, KDArray
from repro.topology.linear import LinearArray
from repro.topology.torus import Torus
from repro.topology.hypercube import Hypercube
from repro.topology.butterfly import Butterfly

__all__ = [
    "Topology",
    "ArrayMesh",
    "KDArray",
    "LinearArray",
    "Torus",
    "Hypercube",
    "Butterfly",
]
