"""Flat, array-backed representation of a directed network.

Design notes
------------
The discrete-event simulator processes millions of hop events; each event
touches an edge only through its integer id. A topology therefore stores
edges as two parallel NumPy integer arrays (``edge_source``, ``edge_target``)
plus a hash lookup from node pair to edge id. Anything richer (coordinates,
direction labels) lives on the concrete subclasses, which the analysis layer
uses but the hot loop never does.

All node and edge ids are 0-based and dense: nodes are ``0..num_nodes-1``
and edges ``0..num_edges-1``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class Topology:
    """A directed graph with dense integer node and edge ids.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids are ``0..num_nodes-1``.
    edges:
        Sequence of ``(source, target)`` pairs. Edge ids are assigned in
        the given order, so concrete topologies control their own edge-id
        layout (the array mesh, for instance, groups edges by direction).
    name:
        Human-readable topology name used in reports.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Sequence[tuple[int, int]],
        *,
        name: str = "topology",
    ) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.name = name
        src = np.empty(len(edges), dtype=np.int64)
        dst = np.empty(len(edges), dtype=np.int64)
        lookup: dict[tuple[int, int], int] = {}
        for eid, (u, v) in enumerate(edges):
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ValueError(f"edge ({u}, {v}) references a node outside 0..{num_nodes - 1}")
            if u == v:
                raise ValueError(f"self-loop edge ({u}, {v}) is not allowed")
            key = (int(u), int(v))
            if key in lookup:
                raise ValueError(f"duplicate edge {key}")
            lookup[key] = eid
            src[eid] = u
            dst[eid] = v
        self.edge_source = src
        self.edge_target = dst
        self._edge_lookup = lookup

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.edge_source.shape[0])

    def edge_id(self, u: int, v: int) -> int:
        """Return the id of the directed edge ``u -> v``.

        Raises
        ------
        KeyError
            If no such edge exists.
        """
        return self._edge_lookup[(int(u), int(v))]

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed edge ``u -> v`` exists."""
        return (int(u), int(v)) in self._edge_lookup

    def edge_endpoints(self, e: int) -> tuple[int, int]:
        """Return ``(source, target)`` of edge ``e``."""
        return int(self.edge_source[e]), int(self.edge_target[e])

    def edges(self) -> Iterable[tuple[int, int, int]]:
        """Iterate ``(edge_id, source, target)`` over all edges."""
        for e in range(self.num_edges):
            yield e, int(self.edge_source[e]), int(self.edge_target[e])

    def out_edges(self, u: int) -> list[int]:
        """Edge ids leaving node ``u`` (computed on demand; not hot-path)."""
        return [e for (a, _b), e in self._edge_lookup.items() if a == u]

    def in_edges(self, v: int) -> list[int]:
        """Edge ids entering node ``v`` (computed on demand; not hot-path)."""
        return [e for (_a, b), e in self._edge_lookup.items() if b == v]

    # ------------------------------------------------------------------
    # Interop / debugging
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` with ``edge_id`` attributes."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        g.add_nodes_from(range(self.num_nodes))
        for e, u, v in self.edges():
            g.add_edge(u, v, edge_id=e)
        return g

    def validate_path(self, path: Sequence[int], src: int, dst: int) -> None:
        """Assert that ``path`` (edge ids) is a contiguous ``src -> dst`` walk.

        Used by routing tests and by the simulator's debug mode.
        """
        at = src
        for e in path:
            u, v = self.edge_endpoints(int(e))
            if u != at:
                raise ValueError(
                    f"path discontinuity: edge {e} starts at {u}, expected {at}"
                )
            at = v
        if at != dst:
            raise ValueError(f"path ends at {at}, expected destination {dst}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
