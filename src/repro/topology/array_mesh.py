"""The n-by-m array mesh — the paper's central topology.

Nodes are laid out on a grid with *rows* ``0..rows-1`` (top to bottom, the
paper's ``i - 1``) and *columns* ``0..cols-1`` (left to right, the paper's
``j - 1``); node ``(1, 1)`` of the paper — the upper-left corner — is node
id 0 here. Every neighbouring pair is joined by two directed edges, one per
direction, matching the paper's "input and an output wire for each pair".

Edge-id layout
--------------
Edges are grouped by direction so analytic rate maps can be built with pure
NumPy indexing:

========= =========================== ==========================
direction paper edge                  id block
========= =========================== ==========================
RIGHT     ``((i, j), (i, j+1))``      ``0 .. H-1``
LEFT      ``((i, j+1), (i, j))``      ``H .. 2H-1``
DOWN      ``((i, j), (i+1, j))``      ``2H .. 2H+V-1``
UP        ``((i+1, j), (i, j))``      ``2H+V .. 2H+2V-1``
========= =========================== ==========================

with ``H = rows * (cols - 1)`` horizontal edges per direction and
``V = (rows - 1) * cols`` vertical edges per direction.

:class:`KDArray` generalises to k dimensions for the Section 5.2 extension.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.topology.base import Topology
from repro.util.validation import check_side

#: Direction constants. Values index the per-direction edge blocks.
RIGHT, LEFT, DOWN, UP = "right", "left", "down", "up"

DIRECTIONS = (RIGHT, LEFT, DOWN, UP)


class ArrayMesh(Topology):
    """An ``rows x cols`` array mesh with directed edges in both directions.

    Parameters
    ----------
    rows:
        Number of rows (the paper's ``n``). Must be at least 2.
    cols:
        Number of columns; defaults to ``rows`` (the paper only treats
        square arrays but notes rectangular ones are handled similarly).

    Examples
    --------
    >>> mesh = ArrayMesh(3)
    >>> mesh.num_nodes, mesh.num_edges
    (9, 24)
    >>> mesh.edge_id(mesh.node_id(0, 0), mesh.node_id(0, 1))  # right edge
    0
    """

    def __init__(self, rows: int, cols: int | None = None) -> None:
        rows = check_side(rows, "rows")
        cols = rows if cols is None else check_side(cols, "cols")
        self.rows = rows
        self.cols = cols
        edges: list[tuple[int, int]] = []
        nid = lambda i, j: i * cols + j  # noqa: E731 - local helper
        # RIGHT block: row-major over (i, j) with j in 0..cols-2.
        for i in range(rows):
            for j in range(cols - 1):
                edges.append((nid(i, j), nid(i, j + 1)))
        # LEFT block.
        for i in range(rows):
            for j in range(cols - 1):
                edges.append((nid(i, j + 1), nid(i, j)))
        # DOWN block: row-major over (i, j) with i in 0..rows-2.
        for i in range(rows - 1):
            for j in range(cols):
                edges.append((nid(i, j), nid(i + 1, j)))
        # UP block.
        for i in range(rows - 1):
            for j in range(cols):
                edges.append((nid(i + 1, j), nid(i, j)))
        super().__init__(rows * cols, edges, name=f"array({rows}x{cols})")
        self._h = rows * (cols - 1)
        self._v = (rows - 1) * cols

    # ------------------------------------------------------------------
    # Node coordinates
    # ------------------------------------------------------------------
    def node_id(self, i: int, j: int) -> int:
        """Node id of row ``i``, column ``j`` (0-based)."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise ValueError(f"({i}, {j}) outside {self.rows}x{self.cols} mesh")
        return i * self.cols + j

    def node_coords(self, v: int) -> tuple[int, int]:
        """Row/column (0-based) of node id ``v``."""
        if not 0 <= v < self.num_nodes:
            raise ValueError(f"node {v} outside 0..{self.num_nodes - 1}")
        return divmod(int(v), self.cols)

    def iter_nodes(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(node_id, row, col)``."""
        for v in range(self.num_nodes):
            i, j = self.node_coords(v)
            yield v, i, j

    # ------------------------------------------------------------------
    # Direction-structured edge access
    # ------------------------------------------------------------------
    def directed_edge_id(self, i: int, j: int, direction: str) -> int:
        """Edge id of the edge leaving node ``(i, j)`` in ``direction``.

        ``RIGHT`` requires ``j < cols-1``, ``LEFT`` requires ``j > 0``,
        ``DOWN`` requires ``i < rows-1``, ``UP`` requires ``i > 0``.
        """
        h, v, cols = self._h, self._v, self.cols
        if direction == RIGHT:
            if j >= cols - 1:
                raise ValueError(f"no right edge from column {j}")
            return i * (cols - 1) + j
        if direction == LEFT:
            if j <= 0:
                raise ValueError("no left edge from column 0")
            return h + i * (cols - 1) + (j - 1)
        if direction == DOWN:
            if i >= self.rows - 1:
                raise ValueError(f"no down edge from row {i}")
            return 2 * h + i * cols + j
        if direction == UP:
            if i <= 0:
                raise ValueError("no up edge from row 0")
            return 2 * h + v + (i - 1) * cols + j
        raise ValueError(f"unknown direction {direction!r}")

    def edge_direction(self, e: int) -> str:
        """Direction label of edge ``e``."""
        h, v = self._h, self._v
        if e < 0 or e >= self.num_edges:
            raise ValueError(f"edge {e} outside 0..{self.num_edges - 1}")
        if e < h:
            return RIGHT
        if e < 2 * h:
            return LEFT
        if e < 2 * h + v:
            return DOWN
        return UP

    def edge_info(self, e: int) -> tuple[str, int, int]:
        """Return ``(direction, i, j)`` where ``(i, j)`` is the source node."""
        u, _ = self.edge_endpoints(e)
        i, j = self.node_coords(u)
        return self.edge_direction(e), i, j

    def horizontal_edge_count(self) -> int:
        """Number of edges per horizontal direction block."""
        return self._h

    def vertical_edge_count(self) -> int:
        """Number of edges per vertical direction block."""
        return self._v

    @property
    def is_square(self) -> bool:
        """True for the paper's square ``n x n`` case."""
        return self.rows == self.cols

    @property
    def side(self) -> int:
        """The side length ``n`` for square meshes.

        Raises
        ------
        ValueError
            If the mesh is rectangular.
        """
        if not self.is_square:
            raise ValueError("side is only defined for square meshes")
        return self.rows


class KDArray(Topology):
    """A k-dimensional array with both directed edges along every dimension.

    Supports the "higher dimensions" extension of Section 5.2. Node ids use
    row-major (C) order over the coordinate tuple; edge ids are grouped by
    ``(dimension, sign)`` block in the order ``(0,+), (0,-), (1,+), (1,-),
    ...`` so that per-dimension rate maps can be assembled independently.

    Parameters
    ----------
    dims:
        Side length per dimension, each at least 2. ``KDArray((n, n))`` is
        graph-isomorphic to ``ArrayMesh(n)`` (edge ids differ).
    """

    def __init__(self, dims: tuple[int, ...]) -> None:
        if len(dims) < 1:
            raise ValueError("dims must have at least one dimension")
        dims = tuple(int(d) for d in dims)
        for d in dims:
            if d < 2:
                raise ValueError(f"every dimension must be >= 2, got {dims}")
        self.dims = dims
        num_nodes = int(np.prod(dims))
        strides: list[int] = []
        acc = 1
        for d in reversed(dims):
            strides.append(acc)
            acc *= d
        self.strides = tuple(reversed(strides))  # row-major strides
        edges: list[tuple[int, int]] = []
        block_slices: list[tuple[int, int]] = []
        for axis in range(len(dims)):
            for sign in (+1, -1):
                start = len(edges)
                for v in range(num_nodes):
                    coord = self.node_coords(v, _nodes=num_nodes)
                    c = coord[axis]
                    if sign == +1 and c < dims[axis] - 1:
                        edges.append((v, v + self.strides[axis]))
                    elif sign == -1 and c > 0:
                        edges.append((v, v - self.strides[axis]))
                block_slices.append((start, len(edges)))
        self._block_slices = tuple(block_slices)
        super().__init__(num_nodes, edges, name=f"kdarray{dims}")

    def node_id(self, coord: tuple[int, ...]) -> int:
        """Node id of a coordinate tuple."""
        if len(coord) != len(self.dims):
            raise ValueError(f"coordinate {coord} has wrong dimensionality")
        v = 0
        for c, d, s in zip(coord, self.dims, self.strides):
            if not 0 <= c < d:
                raise ValueError(f"coordinate {coord} outside dims {self.dims}")
            v += c * s
        return v

    def node_coords(self, v: int, *, _nodes: int | None = None) -> tuple[int, ...]:
        """Coordinate tuple of node id ``v``."""
        total = self.num_nodes if _nodes is None else _nodes
        if not 0 <= v < total:
            raise ValueError(f"node {v} outside 0..{total - 1}")
        out = []
        for s in self.strides:
            out.append(v // s)
            v %= s
        return tuple(out)

    def block(self, axis: int, sign: int) -> tuple[int, int]:
        """Half-open edge-id range for the ``(axis, sign)`` direction block."""
        if sign not in (+1, -1):
            raise ValueError("sign must be +1 or -1")
        idx = 2 * axis + (0 if sign == +1 else 1)
        return self._block_slices[idx]
