"""The d-level butterfly network (Section 4.5's second comparison topology).

We use the standard wrapped-open butterfly of the Stamoulis-Tsitsiklis
setting: ``d + 1`` levels of ``2^d`` rows. A node is a pair ``(level, row)``
with ``level`` in ``0..d`` and ``row`` in ``0..2^d - 1``. From level ``l``
(``l < d``) node ``(l, r)`` has two outgoing edges:

* the *straight* edge to ``(l+1, r)``, and
* the *cross* edge to ``(l+1, r XOR 2^l)``.

Packets enter at level 0 and exit at level ``d``, so every packet crosses
exactly ``d`` edges — the fact behind the paper's remark that the copy
bound (Theorem 10) gives a gap of ``2d`` for the butterfly, matching
Stamoulis and Tsitsiklis.

Edge ids: level blocks in order; within level ``l`` the ``2^d`` straight
edges come first (id ``l * 2^(d+1) + r``), then the ``2^d`` cross edges
(id ``l * 2^(d+1) + 2^d + r``).
"""

from __future__ import annotations

from repro.topology.base import Topology


class Butterfly(Topology):
    """Directed d-level butterfly.

    Examples
    --------
    >>> b = Butterfly(2)
    >>> b.num_nodes, b.num_edges   # 3 levels x 4 rows, 2 levels x 8 edges
    (12, 16)
    """

    def __init__(self, d: int) -> None:
        if not isinstance(d, int) or isinstance(d, bool) or d < 1:
            raise ValueError(f"levels d must be an int >= 1, got {d!r}")
        self.d = d
        self.rows = 1 << d
        edges: list[tuple[int, int]] = []
        for level in range(d):
            for r in range(self.rows):  # straight edges
                edges.append((self.node_id(level, r), self.node_id(level + 1, r)))
            for r in range(self.rows):  # cross edges
                edges.append(
                    (self.node_id(level, r), self.node_id(level + 1, r ^ (1 << level)))
                )
        super().__init__((d + 1) * self.rows, edges, name=f"butterfly({d})")

    def node_id(self, level: int, row: int) -> int:
        """Node id of ``(level, row)``."""
        if not 0 <= level <= self.d:
            raise ValueError(f"level {level} outside 0..{self.d}")
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} outside 0..{self.rows - 1}")
        return level * self.rows + row

    def node_coords(self, v: int) -> tuple[int, int]:
        """Return ``(level, row)`` of node id ``v``."""
        if not 0 <= v < self.num_nodes:
            raise ValueError(f"node {v} outside 0..{self.num_nodes - 1}")
        return divmod(int(v), self.rows)

    def straight_edge(self, level: int, row: int) -> int:
        """Edge id of the straight edge out of ``(level, row)``."""
        if not 0 <= level < self.d:
            raise ValueError(f"no edges out of level {level}")
        return level * 2 * self.rows + row

    def cross_edge(self, level: int, row: int) -> int:
        """Edge id of the cross edge out of ``(level, row)``."""
        if not 0 <= level < self.d:
            raise ValueError(f"no edges out of level {level}")
        return level * 2 * self.rows + self.rows + row

    def edge_level(self, e: int) -> int:
        """Level (layer) an edge leaves from — also a valid layering label."""
        if not 0 <= e < self.num_edges:
            raise ValueError(f"edge {e} outside 0..{self.num_edges - 1}")
        return e // (2 * self.rows)
