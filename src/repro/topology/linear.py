"""1-D linear array.

The paper uses the linear array twice: as the row/column building block of
the Lemma 3 Markov-chain argument, and as the worst-case example showing
Theorems 10 and 12 are essentially tight ("for a linear array of M/D/1
queues, E[N-bar] ~= E[N] d"). Edge ids: the ``n-1`` rightward edges first
(``0..n-2``, edge ``j`` goes ``j -> j+1``), then the leftward edges
(``n-1..2n-3``, edge ``n-1+j`` goes ``j+1 -> j``).
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.util.validation import check_side


class LinearArray(Topology):
    """A line of ``n`` nodes with directed edges both ways.

    Examples
    --------
    >>> line = LinearArray(4)
    >>> line.num_nodes, line.num_edges
    (4, 6)
    >>> line.right_edge(0), line.left_edge(3)
    (0, 5)
    """

    def __init__(self, n: int) -> None:
        n = check_side(n, "n")
        self.n = n
        edges = [(j, j + 1) for j in range(n - 1)]
        edges += [(j + 1, j) for j in range(n - 1)]
        super().__init__(n, edges, name=f"linear({n})")

    def right_edge(self, j: int) -> int:
        """Edge id of ``j -> j+1``."""
        if not 0 <= j < self.n - 1:
            raise ValueError(f"no right edge from node {j}")
        return j

    def left_edge(self, j: int) -> int:
        """Edge id of ``j -> j-1``."""
        if not 1 <= j < self.n:
            raise ValueError(f"no left edge from node {j}")
        return (self.n - 1) + (j - 1)
