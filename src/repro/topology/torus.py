"""2-D torus (array with wraparound), the Section 6 open-problem topology.

The torus is graph-regular: every node has degree 4 in each direction sense,
and every directed ring of edges is a cycle. The paper points out that any
network containing a directed ring cannot be layered, so the Theorem 1
upper-bound machinery does not apply; we still simulate it and use it as
the negative test case for :func:`repro.core.layering.find_layering_obstruction`.

Edge-id layout mirrors :class:`~repro.topology.array_mesh.ArrayMesh`:
RIGHT block, LEFT block, DOWN block, UP block, each of size ``rows*cols``
(every node has all four outgoing edges thanks to wraparound).
"""

from __future__ import annotations

from repro.topology.array_mesh import DOWN, LEFT, RIGHT, UP
from repro.topology.base import Topology
from repro.util.validation import check_side


class Torus(Topology):
    """An ``rows x cols`` torus with directed edges both ways per dimension.

    Examples
    --------
    >>> t = Torus(3)
    >>> t.num_nodes, t.num_edges
    (9, 36)
    """

    def __init__(self, rows: int, cols: int | None = None) -> None:
        rows = check_side(rows, "rows", minimum=3)
        cols = rows if cols is None else check_side(cols, "cols", minimum=3)
        self.rows = rows
        self.cols = cols
        nid = lambda i, j: (i % rows) * cols + (j % cols)  # noqa: E731
        edges: list[tuple[int, int]] = []
        for i in range(rows):
            for j in range(cols):
                edges.append((nid(i, j), nid(i, j + 1)))  # RIGHT
        for i in range(rows):
            for j in range(cols):
                edges.append((nid(i, j), nid(i, j - 1)))  # LEFT
        for i in range(rows):
            for j in range(cols):
                edges.append((nid(i, j), nid(i + 1, j)))  # DOWN
        for i in range(rows):
            for j in range(cols):
                edges.append((nid(i, j), nid(i - 1, j)))  # UP
        super().__init__(rows * cols, edges, name=f"torus({rows}x{cols})")

    def node_id(self, i: int, j: int) -> int:
        """Node id of row ``i``, column ``j`` (coordinates taken mod size)."""
        return (i % self.rows) * self.cols + (j % self.cols)

    def node_coords(self, v: int) -> tuple[int, int]:
        """Row/column of node id ``v``."""
        if not 0 <= v < self.num_nodes:
            raise ValueError(f"node {v} outside 0..{self.num_nodes - 1}")
        return divmod(int(v), self.cols)

    def directed_edge_id(self, i: int, j: int, direction: str) -> int:
        """Edge id of the edge leaving ``(i, j)`` in ``direction``."""
        base = (i % self.rows) * self.cols + (j % self.cols)
        block = {RIGHT: 0, LEFT: 1, DOWN: 2, UP: 3}
        if direction not in block:
            raise ValueError(f"unknown direction {direction!r}")
        return block[direction] * self.num_nodes + base

    def edge_direction(self, e: int) -> str:
        """Direction label of edge ``e``."""
        if not 0 <= e < self.num_edges:
            raise ValueError(f"edge {e} outside 0..{self.num_edges - 1}")
        return (RIGHT, LEFT, DOWN, UP)[e // self.num_nodes]
