"""The d-dimensional hypercube (Section 4.5 comparison topology).

Nodes are the integers ``0..2^d - 1`` read as bit strings; two nodes are
adjacent iff they differ in exactly one bit, and each adjacency carries a
pair of directed edges. Edge ids are grouped by dimension: dimension ``k``
occupies the block ``k * 2^d .. (k+1) * 2^d - 1``, with the edge leaving
node ``v`` across dimension ``k`` at id ``k * 2^d + v``. (Both directions
of a dimension-``k`` adjacency live in the same block, since flipping bit
``k`` of the source distinguishes them.)
"""

from __future__ import annotations

from repro.topology.base import Topology


class Hypercube(Topology):
    """Directed d-dimensional hypercube.

    Parameters
    ----------
    d:
        Dimension; at least 1. The network has ``2^d`` nodes and
        ``d * 2^d`` directed edges.

    Examples
    --------
    >>> h = Hypercube(3)
    >>> h.num_nodes, h.num_edges
    (8, 24)
    >>> h.edge_endpoints(h.dimension_edge(0b101, 1))
    (5, 7)
    """

    def __init__(self, d: int) -> None:
        if not isinstance(d, int) or isinstance(d, bool) or d < 1:
            raise ValueError(f"dimension d must be an int >= 1, got {d!r}")
        self.d = d
        size = 1 << d
        edges: list[tuple[int, int]] = []
        for k in range(d):
            bit = 1 << k
            for v in range(size):
                edges.append((v, v ^ bit))
        super().__init__(size, edges, name=f"hypercube({d})")

    def dimension_edge(self, v: int, k: int) -> int:
        """Edge id of the edge leaving node ``v`` across dimension ``k``."""
        if not 0 <= k < self.d:
            raise ValueError(f"dimension {k} outside 0..{self.d - 1}")
        if not 0 <= v < self.num_nodes:
            raise ValueError(f"node {v} outside 0..{self.num_nodes - 1}")
        return k * self.num_nodes + v

    def edge_dimension(self, e: int) -> int:
        """Dimension crossed by edge ``e``."""
        if not 0 <= e < self.num_edges:
            raise ValueError(f"edge {e} outside 0..{self.num_edges - 1}")
        return e // self.num_nodes

    def hamming_distance(self, u: int, v: int) -> int:
        """Number of differing bits between node ids ``u`` and ``v``."""
        return int(u ^ v).bit_count()
