"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this file lets ``pip install -e .`` take the legacy
``setup.py develop`` route.

The ``fast`` extra names the vectorized-kernel dependency boundary
(see :mod:`repro.sim.kernels`): numpy is already in ``install_requires``
— the reference engines use it too — but ``backend="numpy"`` is the one
feature whose *kernel module* demands it, so the extra documents the
pairing for installers and mirrors the error message
``check_backend("numpy")`` raises when numpy is absent.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
    extras_require={
        # The vectorized kernels (repro.sim.kernels.numpy_backend,
        # selected with backend="numpy") — numpy-only today; future
        # accelerated backends would widen this list.
        "fast": ["numpy>=1.23"],
    },
)
