"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this file lets ``pip install -e .`` take the legacy
``setup.py develop`` route. All real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
)
